"""Tests for :mod:`repro.obs` — metrics, tracing, and their integration.

Four contracts:

* **Metric correctness** — counters/gauges/histograms total exactly under
  concurrent writers; percentile estimates land in the same bucket as a
  sorted-sample reference; snapshots merge without double-counting.
* **Compile-away** — with nothing installed every instrumentation point
  is a no-op, and answers with obs fully live are byte-identical to
  answers with obs off.
* **Propagation** — a trace context captured at submit reaches executor
  workers in thread mode (retroactive queue-wait/dispatch spans on the
  caller's trace) and fork mode (child spans and metric deltas merged
  back to the parent at pool shutdown).
* **Exposition** — Prometheus text renders cumulative buckets, stress
  reports embed the registry snapshot, and the ``metrics`` CLI exposes
  non-zero series after a stress round.
"""

from __future__ import annotations

import json
import math
import os
import random
import subprocess
import sys
import threading
import time
from bisect import bisect_left

import pytest

from repro.engine.counters import RouterStats
from repro.graph.digraph import DiGraph
from repro.graph.generators import attach_equivalent_leaves, gnm_random_graph
from repro.datasets.patterns import random_pattern
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    current_registry,
    diff_state,
    inc,
    installed,
    metrics_on,
    observe,
    set_gauge,
)
from repro.obs.trace import (
    Tracer,
    current_context,
    trace_span,
    tracing,
    tracing_on,
    write_jsonl,
)
from repro.queries.reachability import ReachabilityQuery
from repro.service import EngineService, QueryExecutor, freeze_answer, run_stress

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _mixed_graph(seed: int, n: int = 60, m: int = 170) -> DiGraph:
    g = gnm_random_graph(n, m, num_labels=4, seed=seed)
    attach_equivalent_leaves(g, [4, 3], parents_per_group=2, seed=seed + 1)
    return g


def _workload(graph: DiGraph, seed: int, n_reach: int = 20,
              n_patterns: int = 3) -> list:
    rng = random.Random(seed)
    nodes = graph.node_list()
    queries = [
        ReachabilityQuery(rng.choice(nodes), rng.choice(nodes))
        for _ in range(n_reach)
    ]
    for i in range(n_patterns):
        queries.append(random_pattern(graph, 3, 3, max_bound=2,
                                      star_prob=0.25, seed=seed + 31 + i))
    return queries


# ----------------------------------------------------------------------
# Metric primitives
# ----------------------------------------------------------------------

class TestMetrics:
    def test_counter_gauge_basics(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "help", ("kind",))
        c.inc(1, ("a",))
        c.inc(2.5, ("a",))
        c.inc(1, ("b",))
        assert c.value(("a",)) == 3.5
        assert c.values() == {("a",): 3.5, ("b",): 1}
        g = reg.gauge("g", "help")
        g.set(7)
        g.set(3)
        assert g.value() == 3

    def test_label_arity_checked(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "", ("kind",))
        with pytest.raises(ValueError):
            c.inc(1, ())
        with pytest.raises(ValueError):
            reg.counter("c_total", "", ("other",))  # label mismatch
        with pytest.raises(ValueError):
            reg.gauge("c_total")  # kind mismatch

    def test_from_schema_unknown_name(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.from_schema("no_such_metric")

    def test_histogram_observe_and_render(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "latency", (), buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count() == 5
        assert h.sum() == pytest.approx(5.56)
        assert h.max() == 5.0
        text = reg.render()
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.01"} 2' in text
        assert 'lat_seconds_bucket{le="0.1"} 3' in text
        assert 'lat_seconds_bucket{le="1"} 4' in text
        assert 'lat_seconds_bucket{le="+Inf"} 5' in text
        assert "lat_seconds_count 5" in text

    def test_concurrent_writers_total_exactly(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "", ("t",))
        h = reg.histogram("obs_seconds", "", ())
        per_thread, threads_n = 2000, 8

        def work(i: int) -> None:
            for j in range(per_thread):
                c.inc(1, (str(i % 2),))
                h.observe((j % 7) * 0.001)

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = per_thread * threads_n
        assert sum(c.values().values()) == total
        assert h.count() == total
        expected_sum = sum((j % 7) * 0.001 for j in range(per_thread)) * threads_n
        assert h.sum() == pytest.approx(expected_sum, rel=1e-9)

    def test_percentile_matches_sorted_reference_bucket(self):
        rng = random.Random(5)
        reg = MetricsRegistry()
        h = reg.histogram("lat", "", ())
        # Skewed like real latencies: most fast, a long tail.
        samples = [rng.random() ** 3 * 2.0 for _ in range(5000)]
        for s in samples:
            h.observe(s)
        ordered = sorted(samples)
        for q in (0.5, 0.9, 0.95, 0.99, 1.0):
            true = ordered[math.ceil(q * len(ordered)) - 1]
            est = h.percentile(q)
            idx = bisect_left(LATENCY_BUCKETS, true)
            lo = LATENCY_BUCKETS[idx - 1] if idx > 0 else 0.0
            hi = (LATENCY_BUCKETS[idx] if idx < len(LATENCY_BUCKETS)
                  else max(samples))
            assert lo <= est <= hi, (q, true, est)
            assert est <= h.max()

    def test_percentile_empty_and_invalid_q(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "", ())
        assert h.percentile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.percentile(0.0)
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_state_merge_and_diff(self):
        a = MetricsRegistry()
        a.counter("c_total", "", ("k",)).inc(3, ("x",))
        a.gauge("g").set(5)
        a.histogram("h", "", (), buckets=(1.0, 2.0)).observe(1.5)

        b = MetricsRegistry()
        b.counter("c_total", "", ("k",)).inc(4, ("x",))
        b.gauge("g").set(2)
        hb = b.histogram("h", "", (), buckets=(1.0, 2.0))
        hb.observe(0.5)
        hb.observe(9.0)

        b.merge_state(a.to_state())
        assert b.get("c_total").value(("x",)) == 7
        assert b.get("g").value() == 5  # gauges keep the max
        merged = b.get("h")
        assert merged.count() == 3
        assert merged.sum() == pytest.approx(11.0)
        assert merged.max() == 9.0

        # diff: only the since-baseline delta survives.
        base = b.to_state()
        b.get("c_total").inc(10, ("x",))
        b.get("h").observe(1.2)
        delta = diff_state(b.to_state(), base)
        assert delta["c_total"]["series"] == [[["x"], 10]]
        assert delta["h"]["series"][0][1]["count"] == 1
        assert "g" in delta  # gauges pass through

    def test_compile_away_when_uninstalled(self):
        assert current_registry() is None
        assert not metrics_on()
        # All no-ops, no exceptions, nothing created anywhere.
        inc("router_queries_total", ("reachability",))
        observe("router_dispatch_seconds", 0.1, ("reachability",))
        set_gauge("executor_queue_depth", 3)
        with installed() as reg:
            assert metrics_on() and current_registry() is reg
            inc("router_queries_total", ("reachability",))
            assert reg.get("router_queries_total").value(("reachability",)) == 1
        assert current_registry() is None


# ----------------------------------------------------------------------
# RouterStats as a registry view
# ----------------------------------------------------------------------

class TestRouterStats:
    def test_binds_to_installed_registry(self):
        with installed() as reg:
            stats = RouterStats()
            assert stats.registry is reg
            stats.record("reachability", 0.002, queries=3)
            stats.record("pattern", 0.004)
            stats.record_fallback("pattern", queries=2)
            assert reg.get("router_queries_total").value(("reachability",)) == 3
            assert reg.get("router_dispatches_total").value(("pattern",)) == 1
        assert stats.hits("reachability") == 3
        assert stats.total_queries() == 4
        assert stats.fallbacks("pattern") == 2

    def test_private_registry_when_none_installed(self):
        stats = RouterStats()
        assert current_registry() is None
        stats.record("reachability", 0.001)
        snap = stats.snapshot()
        assert snap["reachability"]["hits"] == 1
        assert snap["reachability"]["mean_ms"] == pytest.approx(1.0)

    def test_snapshot_percentiles_hot_order(self):
        stats = RouterStats()
        for _ in range(10):
            stats.record("reachability", 0.001, queries=2)
        stats.record("pattern", 0.01)
        stats.record_fallback("pattern")
        snap = stats.snapshot()
        assert snap["reachability"]["hits"] == 20
        assert snap["pattern"]["fallbacks"] == 1
        pct = stats.percentiles()
        assert pct["reachability"]["count"] == 10
        assert 0 < pct["reachability"]["p50_ms"] <= pct["reachability"]["p99_ms"]
        assert stats.hot_order(["pattern", "reachability"]) == \
            ["reachability", "pattern"]
        stats.clear()
        assert stats.total_queries() == 0


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------

class TestTracing:
    def test_noop_when_uninstalled(self):
        assert not tracing_on()
        assert current_context() is None
        with trace_span("anything", attr=1) as span:
            span.set(more=2)  # swallowed, no tracer

    def test_nesting_and_attrs(self):
        with tracing() as tracer:
            with trace_span("root", a=1) as root:
                root.set(b=2)
                with trace_span("child"):
                    pass
        spans = tracer.spans()
        assert [s["name"] for s in spans] == ["child", "root"]
        child, root = spans
        assert child["trace_id"] == root["trace_id"]
        assert child["parent_id"] == root["span_id"]
        assert root["parent_id"] is None
        assert root["attrs"] == {"a": 1, "b": 2}
        assert root["duration_ms"] >= child["duration_ms"] >= 0

    def test_error_marked(self):
        with tracing() as tracer:
            with pytest.raises(RuntimeError):
                with trace_span("boom"):
                    raise RuntimeError("x")
        (span,) = tracer.spans()
        assert span["attrs"]["error"] == "RuntimeError"

    def test_record_span_reanchors_wall(self):
        with tracing() as tracer:
            start = time.perf_counter() - 0.5
            tracer.record_span("late", start, start + 0.25)
        (span,) = tracer.spans()
        assert span["duration_ms"] == pytest.approx(250.0, abs=1.0)
        # wall is re-anchored ~0.5s into the past.
        assert time.time() - span["wall"] == pytest.approx(0.5, abs=0.2)

    def test_slow_queries_and_jsonl(self, tmp_path):
        with tracing(Tracer(slow_threshold_s=0.0)) as tracer:
            with trace_span("query", version=3):
                with trace_span("dispatch"):
                    pass
        slow = tracer.slow_queries()
        assert len(slow) == 1
        assert slow[0]["name"] == "query"
        assert slow[0]["attrs"] == {"version": 3}
        assert [c["name"] for c in slow[0]["spans"]] == ["dispatch"]
        out = tmp_path / "trace.jsonl"
        n = write_jsonl(tracer.spans(), out)
        lines = out.read_text().splitlines()
        assert n == len(lines) == 2
        assert {json.loads(line)["name"] for line in lines} == \
            {"query", "dispatch"}


# ----------------------------------------------------------------------
# Integration: the serving stack under obs
# ----------------------------------------------------------------------

class TestServingIntegration:
    def test_metrics_off_answers_byte_identical(self):
        g = _mixed_graph(7)
        queries = _workload(g, 7)
        service = EngineService(g.copy())
        bare = [freeze_answer(service.query(q)) for q in queries]
        service.close()
        with installed(), tracing():
            service = EngineService(g.copy())
            live = [freeze_answer(service.query(q)) for q in queries]
            service.close()
        assert bare == live

    def test_service_query_populates_registry(self):
        g = _mixed_graph(3)
        with installed() as reg:
            service = EngineService(g)
            for q in _workload(g, 3):
                service.query(q)
            service.close()
        assert sum(reg.get("router_queries_total").values().values()) == 23
        assert reg.get("epoch_builds_total").value(("reachability",)) >= 1
        assert reg.get("router_dispatch_seconds").count(("reachability",)) > 0
        assert reg.get("service_publications_total") is None  # no applies

    def test_traced_query_span_coverage(self):
        g = _mixed_graph(9)
        pattern = _workload(g, 9, n_reach=0, n_patterns=1)[0]
        service = EngineService(g)
        with tracing() as tracer:
            t0 = time.perf_counter()
            service.query(pattern)  # cold: builds land inside the span
            wall = time.perf_counter() - t0
        service.close()
        roots = [s for s in tracer.spans()
                 if s["parent_id"] is None and s["name"] == "service.query"]
        assert len(roots) == 1
        covered = roots[0]["end"] - roots[0]["start"]
        assert covered >= 0.9 * wall

    def test_thread_executor_trace_propagation(self):
        g = _mixed_graph(5)
        queries = _workload(g, 5, n_reach=8, n_patterns=0)
        with installed() as reg, tracing() as tracer:
            service = EngineService(g)
            ex = QueryExecutor(service, 2, mode="thread", max_batch=4)
            try:
                with trace_span("client") as _root:
                    futures = [ex.submit(q) for q in queries]
                    for fut in futures:
                        fut.result(timeout=60.0)
            finally:
                ex.shutdown(wait=True)
                service.close()
        spans = tracer.spans()
        client = next(s for s in spans if s["name"] == "client")
        by_name: dict = {}
        for s in spans:
            by_name.setdefault(s["name"], []).append(s)
        # Retroactive spans land on the submitting trace...
        for name in ("executor.queue_wait", "executor.dispatch"):
            assert by_name[name], name
            assert all(s["trace_id"] == client["trace_id"]
                       for s in by_name[name]), name
        # ...and ambient attach nests the engine's own spans under it too.
        assert all(s["trace_id"] == client["trace_id"]
                   for s in by_name["engine.dispatch"])
        # Queue-wait + dispatch metrics flowed into the same registry.
        assert reg.get("executor_queue_wait_seconds").count() == len(queries)
        assert reg.get("executor_batch_queries").count() > 0

    @pytest.mark.skipif(not hasattr(os, "fork"),
                        reason="fork mode needs POSIX fork")
    def test_fork_pool_telemetry_merged_back(self):
        g = _mixed_graph(11)
        queries = _workload(g, 11, n_reach=10, n_patterns=2)
        with installed() as reg, tracing() as tracer:
            service = EngineService(g.copy())
            ex = QueryExecutor(service, 2, mode="fork", max_batch=4)
            try:
                answers = ex.map(queries)
            finally:
                ex.shutdown(wait=True)
                service.close()
        expected_service = EngineService(g.copy())
        expected = [freeze_answer(expected_service.query(q)) for q in queries]
        expected_service.close()
        assert [freeze_answer(a) for a in answers] == expected
        # Child-side counters survived pool shutdown (merged, not lost);
        # the counter is per shipped micro-batch, so between 1 (all
        # coalesced) and len(queries) (no coalescing).
        assert 1 <= reg.get("executor_fork_tasks_total").value() <= len(queries)
        # ...without double-counting the parent's inherited prefix.
        dispatched = sum(
            reg.get("router_queries_total").values().values()
        )
        assert dispatched == len(queries)
        # Child spans shipped over the result pipe into the parent tracer.
        child_spans = [s for s in tracer.spans()
                       if s["name"] == "engine.dispatch"]
        assert child_spans
        assert any(s["span_id"].split(".")[0] != f"{os.getpid():x}"
                   for s in child_spans)

    def test_stress_report_embeds_obs_snapshot(self):
        g = _mixed_graph(13)
        report = run_stress(g, readers=2, writer_batches=2, batch_size=4,
                            queries_per_reader=5, seed=3)
        assert "obs" not in report
        with installed(), tracing():
            report = run_stress(g, readers=2, writer_batches=2, batch_size=4,
                                queries_per_reader=5, seed=3)
        assert report["mismatches"] == 0 and report["errors"] == []
        obs = report["obs"]
        assert obs["metrics"]["router_queries_total"]["series"]
        assert obs["metrics"]["service_publications_total"]["series"]
        assert obs["spans_recorded"] > 0

    def test_metrics_cli_smoke(self, tmp_path):
        trace_out = tmp_path / "trace.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.service", "metrics", "--quick",
             "--nodes", "40", "--edges", "110", "--workers", "2",
             "--trace-out", str(trace_out)],
            capture_output=True, text=True, env=env, timeout=240,
        )
        assert proc.returncode == 0, proc.stderr
        assert "# TYPE router_queries_total counter" in proc.stdout
        assert "router_dispatch_seconds_bucket" in proc.stdout
        assert "executor_batch_queries" in proc.stdout
        assert "catalog_base_loads_total" in proc.stdout
        assert "epoch_builds_total" in proc.stdout
        assert "service_publications_total" in proc.stdout
        assert "stress: queries=" in proc.stderr
        spans = [json.loads(line)
                 for line in trace_out.read_text().splitlines()]
        assert spans and {"trace_id", "span_id", "name", "duration_ms"} <= \
            set(spans[0])


# ----------------------------------------------------------------------
# Prometheus text-exposition conformance (golden file)
# ----------------------------------------------------------------------

GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                      "metrics_exposition.txt")


def _conformance_registry() -> MetricsRegistry:
    """The deterministic registry the golden file was rendered from —
    exercises label escaping, multi-family ordering and histograms."""
    reg = MetricsRegistry()
    c = reg.counter("demo_requests_total", "Requests by endpoint and status.",
                    ("endpoint", "status"))
    c.inc(3, ("/metrics", "200"))
    c.inc(1, ("/health", "503"))
    c.inc(1, ('/tricky"quote', "200"))
    c.inc(2, ("/back\\slash\nnewline", "200"))
    g = reg.gauge("demo_queue_depth", "Queued tasks awaiting a worker.")
    g.set(4)
    h = reg.histogram("demo_latency_seconds",
                      "Request latency.\nSecond help line with a \\ backslash.",
                      ("endpoint",), buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.05, 0.5, 5.0):
        h.observe(v, ("/metrics",))
    h.observe(0.25, ("/health",))
    return reg


class TestExpositionConformance:
    def test_render_matches_golden(self):
        with open(GOLDEN, encoding="utf-8") as fh:
            golden = fh.read()
        assert _conformance_registry().render() == golden

    def test_help_precedes_type_per_family(self):
        lines = _conformance_registry().render().splitlines()
        seen_help: set = set()
        for line in lines:
            if line.startswith("# HELP "):
                seen_help.add(line.split()[2])
            elif line.startswith("# TYPE "):
                name = line.split()[2]
                assert name in seen_help, f"TYPE before HELP for {name}"

    def test_label_escaping(self):
        text = _conformance_registry().render()
        # Backslash, double-quote and newline all escape; the raw
        # (unescaped) values never appear in the exposition.
        assert 'endpoint="/back\\\\slash\\nnewline"' in text
        assert 'endpoint="/tricky\\"quote"' in text
        assert "/back\\slash\nnewline" not in text
        assert '/tricky"quote' not in text
        # HELP text escapes newlines too — every line is one sample/comment.
        assert "# HELP demo_latency_seconds Request latency.\\nSecond" in text
        for line in text.splitlines():
            assert line.startswith(("# HELP ", "# TYPE ", "demo_"))

    def test_histogram_invariants(self):
        text = _conformance_registry().render()
        # Cumulative buckets: each le bound's count is monotone, +Inf
        # equals _count, and _sum/_count are present per series.
        for series, count, total in (("/metrics", 5, 5.605), ("/health", 1, 0.25)):
            cumulative = []
            for line in text.splitlines():
                if line.startswith("demo_latency_seconds_bucket") \
                        and f'endpoint="{series}"' in line:
                    cumulative.append(int(line.rsplit(" ", 1)[1]))
            assert cumulative == sorted(cumulative)
            assert cumulative[-1] == count  # the +Inf bucket
            assert f'demo_latency_seconds_count{{endpoint="{series}"}} ' \
                   f"{count}" in text
            assert f'demo_latency_seconds_sum{{endpoint="{series}"}} ' \
                   f"{total}" in text

    def test_schema_metrics_render_parseable(self):
        # Every schema metric renders with HELP+TYPE and scrape-parseable
        # sample lines (name{labels} value).
        from repro.obs.metrics import SCHEMA

        reg = MetricsRegistry()
        for name in SCHEMA:
            reg.from_schema(name)
        text = reg.render()
        for name in SCHEMA:
            assert f"# HELP {name} " in text
            assert f"# TYPE {name} " in text


# ----------------------------------------------------------------------
# Tracer retention bounds (live-ops: a long-lived server must not grow)
# ----------------------------------------------------------------------

class TestTracerBounds:
    def test_retention_cap_and_drop_counter(self):
        with installed() as reg:
            tracer = Tracer(max_spans=5)
            with tracing(tracer):
                for i in range(8):
                    with trace_span(f"s{i}"):
                        pass
            assert len(tracer.spans()) == 5
            assert tracer.dropped_spans == 3
            assert reg.get("trace_spans_dropped_total").value() == 3
            # The slow-query log is a view over the same bounded buffer.
            assert len(tracer.slow_queries(threshold_s=0.0)) <= 5

    def test_drain_frees_room_and_clear_resets(self):
        tracer = Tracer(max_spans=2)
        with tracing(tracer):
            for _ in range(3):
                with trace_span("x"):
                    pass
        assert tracer.dropped_spans == 1
        tracer.drain()
        with tracing(tracer):
            with trace_span("y"):
                pass
        assert [s["name"] for s in tracer.spans()] == ["y"]
        tracer.clear()
        assert tracer.dropped_spans == 0

    def test_add_spans_respects_cap(self):
        tracer = Tracer(max_spans=3)
        tracer.add_spans([{"name": f"n{i}", "trace_id": "t", "span_id": str(i),
                           "parent_id": None, "start": 0.0, "end": 0.0,
                           "duration_ms": 0.0, "wall": 0.0, "attrs": {}}
                          for i in range(5)])
        assert len(tracer.spans()) == 3
        assert tracer.dropped_spans == 2

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_span_name_stacks_follow_ambient_spans(self):
        tracer = Tracer()
        ident = threading.get_ident()
        with tracing(tracer):
            assert tracer.span_name_stacks() == {}
            with trace_span("outer"):
                with trace_span("inner"):
                    assert tracer.span_name_stacks()[ident] == \
                        ("outer", "inner")
                assert tracer.span_name_stacks()[ident] == ("outer",)
        assert tracer.span_name_stacks() == {}

    def test_attached_context_is_unnamed(self):
        from repro.obs.trace import attach

        tracer = Tracer()
        ident = threading.get_ident()
        with tracing(tracer):
            with trace_span("root"):
                ctx = current_context()
        with tracing(tracer):
            with attach(ctx):
                # Adopted contexts have no name — filtered, and with no
                # named span open the thread is omitted entirely.
                assert ident not in tracer.span_name_stacks()
                with trace_span("named"):
                    assert tracer.span_name_stacks()[ident] == ("named",)
