"""Property-based tests (hypothesis) for the core invariants.

These hammer the central claims of the paper on arbitrary small graphs:
preservation of reachability and pattern answers, equivalence-relation laws,
quotient soundness, transitive-reduction minimality, and incremental/batch
agreement.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.bisimulation import (
    bisimulation_partition,
    bisimulation_partition_naive,
    is_stable,
)
from repro.core.equivalence import reachability_partition, reachability_partition_naive
from repro.core.incremental_pattern import IncrementalPatternCompressor
from repro.core.incremental_reach import IncrementalReachabilityCompressor
from repro.core.pattern import compress_pattern
from repro.core.reachability import compress_reachability
from repro.graph.digraph import DiGraph
from repro.graph.transitive import (
    dag_transitive_reduction,
    transitive_closure_pairs,
)
from repro.graph.traversal import path_exists
from repro.queries.matching import match, match_naive
from repro.datasets.patterns import random_pattern


@st.composite
def small_graphs(draw, max_nodes=12, labels=("X", "Y")):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=3 * n,
        )
    )
    label_choice = draw(st.lists(st.sampled_from(labels), min_size=n, max_size=n))
    g = DiGraph()
    for v in range(n):
        g.add_node(v, label_choice[v])
    for u, v in edges:
        g.add_edge(u, v)
    return g


@st.composite
def graph_with_updates(draw):
    g = draw(small_graphs(max_nodes=10))
    n = g.order()
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["+", "-"]),
                st.integers(min_value=0, max_value=n + 2),
                st.integers(min_value=0, max_value=n + 2),
            ),
            min_size=1,
            max_size=8,
        )
    )
    return g, list(ops)


@settings(max_examples=60, deadline=None)
@given(small_graphs())
def test_reachability_equivalence_laws(g):
    part = reachability_partition(g)
    # Same partition as the literal definition.
    assert part.as_frozen() == reachability_partition_naive(g).as_frozen()
    # Partition covers every node exactly once.
    assert sum(len(b) for b in part.blocks()) == g.order()


@settings(max_examples=60, deadline=None)
@given(small_graphs())
def test_reachability_preservation(g):
    rc = compress_reachability(g)
    assert rc.stats().compressed_size <= rc.stats().original_size
    for u in g.nodes():
        for v in g.nodes():
            assert rc.query(u, v) == path_exists(g, u, v)


@settings(max_examples=60, deadline=None)
@given(small_graphs())
def test_bisimulation_partition_properties(g):
    part = bisimulation_partition(g)
    assert part.as_frozen() == bisimulation_partition_naive(g).as_frozen()
    assert is_stable(g, part)
    # Blocks are label-uniform.
    for block in part.blocks():
        assert len({g.label(v) for v in block}) == 1


@settings(max_examples=40, deadline=None)
@given(small_graphs(), st.integers(min_value=0, max_value=1 << 30))
def test_pattern_preservation(g, seed):
    if g.size() == 0:
        return
    pc = compress_pattern(g)
    rng = random.Random(seed)
    q = random_pattern(
        g, rng.randrange(2, 4), rng.randrange(1, 4), max_bound=2,
        star_prob=0.3, seed=seed,
    )
    assert pc.query(q, match) == match_naive(q, g)


@settings(max_examples=60, deadline=None)
@given(small_graphs())
def test_transitive_reduction_is_minimal_and_equivalent(g):
    from repro.graph.scc import condensation

    dag = condensation(g).dag
    red = dag_transitive_reduction(dag)
    closure = transitive_closure_pairs(dag)
    assert transitive_closure_pairs(red) == closure
    # Minimality: every kept edge is necessary.
    for u, v in list(red.edges()):
        red.remove_edge(u, v)
        assert transitive_closure_pairs(red) != closure
        red.add_edge(u, v)


@settings(max_examples=40, deadline=None)
@given(graph_with_updates())
def test_incremental_reachability_agrees_with_batch(data):
    g, updates = data
    inc = IncrementalReachabilityCompressor(g)
    work = g.copy()
    for op, u, v in updates:
        (work.add_edge if op == "+" else work.remove_edge)(u, v)
    inc.apply(updates)
    want = compress_reachability(work)
    got = inc.compression()

    def canon(rc):
        mem = {h: frozenset(rc.members(h)) for h in rc.compressed.nodes()}
        return (
            frozenset(mem.values()),
            frozenset((mem[a], mem[b]) for a, b in rc.compressed.edges()),
        )

    assert canon(want) == canon(got)


@settings(max_examples=40, deadline=None)
@given(graph_with_updates())
def test_incremental_pattern_agrees_with_batch(data):
    g, updates = data
    inc = IncrementalPatternCompressor(g)
    work = g.copy()
    for op, u, v in updates:
        (work.add_edge if op == "+" else work.remove_edge)(u, v)
    inc.apply(updates)
    want = compress_pattern(work)
    got = inc.compression()

    def canon(pc):
        mem = {h: frozenset(pc.members(h)) for h in pc.compressed.nodes()}
        return (
            frozenset(mem.values()),
            frozenset((mem[a], mem[b]) for a, b in pc.compressed.edges()),
            frozenset(
                (mem[h], pc.compressed.label(h)) for h in pc.compressed.nodes()
            ),
        )

    assert canon(want) == canon(got)
