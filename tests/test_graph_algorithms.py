"""Unit tests for traversal, SCC, transitive closure/reduction, and ranks."""

import random

import pytest

from repro.graph.bitset import bitset_of, contains, iter_bits, popcount, without
from repro.graph.digraph import DiGraph, NodeIndexer
from repro.graph.generators import gnm_random_graph
from repro.graph.rank import (
    NEG_INF,
    bisimulation_ranks,
    rank_strata,
    topological_ranks,
    well_founded_nodes,
)
from repro.graph.scc import (
    condensation,
    strongly_connected_components,
    strongly_connected_components_within,
)
from repro.graph.transitive import (
    aho_transitive_reduction,
    ancestor_bitsets,
    dag_transitive_reduction,
    descendant_bitsets,
    naive_transitive_closure_pairs,
    transitive_closure_pairs,
)
from repro.graph.traversal import (
    bfs_distances,
    bfs_reachable,
    bidirectional_reachable,
    dfs_postorder,
    dfs_preorder,
    is_acyclic,
    nonempty_path_exists,
    path_exists,
    topological_order,
)


# ----------------------------------------------------------------------
# bitset helpers
# ----------------------------------------------------------------------
def test_bitset_helpers():
    mask = bitset_of([0, 2, 5])
    assert mask == 0b100101
    assert list(iter_bits(mask)) == [0, 2, 5]
    assert popcount(mask) == 3
    assert contains(mask, 2) and not contains(mask, 1)
    assert without(mask, 2) == 0b100001


# ----------------------------------------------------------------------
# traversal
# ----------------------------------------------------------------------
def test_bfs_reachable_includes_source():
    g = DiGraph.from_edges([(1, 2), (2, 3)])
    assert bfs_reachable(g, 1) == {1, 2, 3}
    assert bfs_reachable(g, 3) == {3}
    assert bfs_reachable(g, 3, reverse=True) == {1, 2, 3}


def test_bfs_distances_with_depth_cap():
    g = DiGraph.from_edges([(1, 2), (2, 3), (3, 4)])
    assert bfs_distances(g, 1) == {1: 0, 2: 1, 3: 2, 4: 3}
    assert bfs_distances(g, 1, max_depth=2) == {1: 0, 2: 1, 3: 2}


def test_path_exists_and_bibfs_agree_randomized():
    rng = random.Random(0)
    for trial in range(10):
        g = gnm_random_graph(30, rng.randrange(10, 120), seed=trial)
        for _ in range(80):
            u, v = rng.randrange(30), rng.randrange(30)
            assert path_exists(g, u, v) == bidirectional_reachable(g, u, v)


def test_nonempty_path_self_requires_cycle():
    g = DiGraph.from_edges([(1, 2), (2, 1), (3, 4)])
    assert nonempty_path_exists(g, 1, 1)   # on a 2-cycle
    assert not nonempty_path_exists(g, 3, 3)
    assert nonempty_path_exists(g, 3, 4)


def test_dfs_orders():
    g = DiGraph.from_edges([(1, 2), (1, 3), (2, 4)])
    pre = dfs_preorder(g, 1)
    assert pre[0] == 1 and set(pre) == {1, 2, 3, 4}
    post = dfs_postorder(g)
    assert set(post) == {1, 2, 3, 4}
    assert post.index(4) < post.index(2) < post.index(1)


def test_topological_order_and_cycles():
    dag = DiGraph.from_edges([(1, 2), (2, 3), (1, 3)])
    order = topological_order(dag)
    assert order.index(1) < order.index(2) < order.index(3)
    assert is_acyclic(dag)
    cyc = DiGraph.from_edges([(1, 2), (2, 1)])
    assert not is_acyclic(cyc)
    with pytest.raises(ValueError):
        topological_order(cyc)
    loop = DiGraph.from_edges([(1, 1)])
    assert not is_acyclic(loop)


# ----------------------------------------------------------------------
# SCC / condensation
# ----------------------------------------------------------------------
def test_tarjan_basic():
    g = DiGraph.from_edges([(1, 2), (2, 3), (3, 1), (3, 4), (4, 5), (5, 4)])
    comps = {frozenset(c) for c in strongly_connected_components(g)}
    assert comps == {frozenset({1, 2, 3}), frozenset({4, 5})}


def test_tarjan_reverse_topological_emission():
    g = DiGraph.from_edges([(1, 2), (2, 3)])
    comps = strongly_connected_components(g)
    # Sinks first: component {3} must come before {1}.
    order = [c[0] for c in comps]
    assert order.index(3) < order.index(1)


def test_condensation_structure():
    g = DiGraph.from_edges([(1, 2), (2, 1), (2, 3), (1, 3), (4, 4)])
    cond = condensation(g)
    assert cond.scc_count() == 3
    assert cond.same_scc(1, 2) and not cond.same_scc(1, 3)
    assert cond.scc_of[4] in cond.cyclic  # self-loop => cyclic
    assert cond.scc_of[3] not in cond.cyclic
    scc12 = cond.scc_of[1]
    scc3 = cond.scc_of[3]
    assert cond.edge_support[(scc12, scc3)] == 2  # two supporting edges
    assert is_acyclic(cond.dag)


def test_scc_within_members_matches_subgraph():
    rng = random.Random(1)
    for trial in range(10):
        g = gnm_random_graph(25, rng.randrange(10, 100), seed=trial + 50)
        members = {v for v in g.nodes() if rng.random() < 0.6}
        want = {
            frozenset(c)
            for c in strongly_connected_components(g.subgraph(members))
        }
        got = {
            frozenset(c)
            for c in strongly_connected_components_within(g, members)
        }
        assert want == got


# ----------------------------------------------------------------------
# transitive closure / reduction
# ----------------------------------------------------------------------
def test_closure_matches_naive_randomized():
    rng = random.Random(2)
    for trial in range(10):
        g = gnm_random_graph(20, rng.randrange(5, 80), seed=trial + 9)
        assert transitive_closure_pairs(g) == naive_transitive_closure_pairs(g)


def test_dag_transitive_reduction_unique_and_minimal():
    dag = DiGraph.from_edges([(1, 2), (2, 3), (1, 3)])
    red = dag_transitive_reduction(dag)
    assert set(red.edges()) == {(1, 2), (2, 3)}
    # Reduction preserves the closure.
    assert transitive_closure_pairs(red) == transitive_closure_pairs(dag)


def test_aho_reduction_preserves_closure_with_cycles():
    rng = random.Random(3)
    for trial in range(8):
        g = gnm_random_graph(18, rng.randrange(5, 90), seed=trial + 31)
        reduced = aho_transitive_reduction(g)
        assert reduced.size() <= g.size()
        assert transitive_closure_pairs(reduced) == transitive_closure_pairs(g)


def test_descendant_and_ancestor_bitsets():
    dag = DiGraph.from_edges([(1, 2), (2, 3)])
    ix = NodeIndexer(dag.node_list())
    desc = descendant_bitsets(dag, ix)
    anc = ancestor_bitsets(dag, ix)
    assert desc[1] == (1 << ix.index(2)) | (1 << ix.index(3))
    assert anc[3] == (1 << ix.index(1)) | (1 << ix.index(2))
    refl = descendant_bitsets(dag, ix, reflexive=True)
    assert refl[3] == 1 << ix.index(3)


# ----------------------------------------------------------------------
# ranks (Section 5)
# ----------------------------------------------------------------------
def test_topological_ranks_chain_and_scc():
    g = DiGraph.from_edges([(1, 2), (2, 3), (3, 2)])  # 1 -> {2,3} cycle
    r = topological_ranks(g)
    assert r[2] == r[3] == 0  # bottom SCC, no condensation children
    assert r[1] == 1


def test_well_founded_nodes():
    g = DiGraph.from_edges([(1, 2), (2, 3), (3, 2), (4, 1)])
    wf = well_founded_nodes(g)
    assert not wf[2] and not wf[3]  # on a cycle
    assert not wf[1] and not wf[4]  # reach a cycle
    g2 = DiGraph.from_edges([(1, 2)])
    assert all(well_founded_nodes(g2).values())


def test_bisimulation_ranks_paper_cases():
    # Leaf -> rank 0; bottom cycle -> -inf; mixed parent takes the max.
    g = DiGraph.from_edges([(1, 2), (1, 3), (3, 4), (4, 3), (2, 5)])
    rb = bisimulation_ranks(g)
    assert rb[5] == 0
    assert rb[2] == 1
    assert rb[3] == NEG_INF and rb[4] == NEG_INF
    # rb(1) = max(rb(2)+1 [2 is WF], rb(3) [3 is NWF]) = 2.
    assert rb[1] == 2


def test_rank_strata_sorts_neg_inf_first():
    strata = rank_strata({1: 0, 2: NEG_INF, 3: 1})
    assert sorted(strata) == [NEG_INF, 0, 1]
