"""Tests for ``incPCM`` (Section 5.2): exact agreement with ``compressB``."""

import random

from repro.core.incremental_pattern import IncrementalPatternCompressor
from repro.core.pattern import compress_pattern
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_graph
from repro.queries.matching import match, match_naive
from repro.datasets.patterns import random_pattern


def canon(pc):
    mem = {h: frozenset(pc.members(h)) for h in pc.compressed.nodes()}
    return (
        frozenset(mem.values()),
        frozenset((mem[a], mem[b]) for a, b in pc.compressed.edges()),
        frozenset((mem[h], pc.compressed.label(h)) for h in pc.compressed.nodes()),
    )


def assert_matches_batch(inc, work, context=""):
    assert canon(inc.compression()) == canon(compress_pattern(work)), context


def test_randomized_update_sequences_match_batch():
    rng = random.Random(3)
    for trial in range(25):
        n = rng.randrange(5, 22)
        m = rng.randrange(0, min(60, n * (n - 1)))
        g = gnm_random_graph(n, m, num_labels=rng.choice([1, 3]), seed=trial * 13)
        inc = IncrementalPatternCompressor(g)
        work = g.copy()
        for step in range(6):
            batch = []
            for _ in range(rng.randrange(1, 6)):
                if rng.random() < 0.55:
                    batch.append(("+", rng.randrange(n + 3), rng.randrange(n + 3)))
                else:
                    edges = work.edge_list()
                    if edges:
                        u, v = rng.choice(edges)
                        batch.append(("-", u, v))
            for op, u, v in batch:
                (work.add_edge if op == "+" else work.remove_edge)(u, v)
            inc.apply(batch)
            assert_matches_batch(inc, work, f"trial {trial} step {step}: {batch}")


def test_example7_flavour(recommendation_network):
    """The paper's Example 7: deleting an interaction splits C1 from C2,
    then FA1 regroups with FA3/FA4."""
    g = recommendation_network
    inc = IncrementalPatternCompressor(g)
    work = g.copy()
    # Remove C1's reply to FA1 (e1-style deletion): C1 stops being cyclic.
    batch = [("-", "C1", "FA1")]
    for op, u, v in batch:
        work.remove_edge(u, v)
    inc.apply(batch)
    assert_matches_batch(inc, work)
    part = inc.partition()
    assert not part.same_block("C1", "C2")  # C1 lost its cycle
    assert part.same_block("C1", "C3")  # ... and became a plain sink
    assert part.same_block("FA1", "FA3")  # FA1 now only points at sinks


def test_mindelta_redundant_insertion():
    # u already has a child in [w]: inserting another child of that class
    # must not dirty anything (paper's minDelta insertion rule).
    g = DiGraph.from_edges([("u", "w1"), ("x", "w2")])
    for v, lab in {"u": "U", "x": "U", "w1": "W", "w2": "W"}.items():
        g.set_label(v, lab)
    inc = IncrementalPatternCompressor(g)
    assert inc.partition().same_block("w1", "w2")
    inc.apply([("+", "u", "w2")])
    assert inc.last_affected_size == 0
    assert inc.last_redundant == 1
    work = g.copy()
    work.add_edge("u", "w2")
    assert_matches_batch(inc, work)


def test_mindelta_redundant_deletion():
    g = DiGraph.from_edges([("u", "w1"), ("u", "w2")])
    g.set_label("w1", "W")
    g.set_label("w2", "W")
    inc = IncrementalPatternCompressor(g)
    inc.apply([("-", "u", "w1")])
    assert inc.last_affected_size == 0  # w2 still witnesses the class
    work = g.copy()
    work.remove_edge("u", "w1")
    assert_matches_batch(inc, work)


def test_query_results_preserved_after_updates():
    rng = random.Random(9)
    g = gnm_random_graph(20, 70, num_labels=3, seed=21)
    inc = IncrementalPatternCompressor(g)
    work = g.copy()
    for step in range(5):
        batch = []
        for _ in range(4):
            if rng.random() < 0.6:
                batch.append(("+", rng.randrange(20), rng.randrange(20)))
            else:
                edges = work.edge_list()
                if edges:
                    u, v = rng.choice(edges)
                    batch.append(("-", u, v))
        for op, u, v in batch:
            (work.add_edge if op == "+" else work.remove_edge)(u, v)
        inc.apply(batch)
        q = random_pattern(work, 3, 3, max_bound=2, star_prob=0.2, seed=step)
        assert inc.compression().query(q, match) == match_naive(q, work)


def test_new_nodes_and_unknown_op():
    import pytest

    g = DiGraph.from_edges([(1, 2)])
    inc = IncrementalPatternCompressor(g)
    inc.apply([("+", 2, "fresh")])
    work = g.copy()
    work.add_edge(2, "fresh")
    assert_matches_batch(inc, work)
    with pytest.raises(ValueError):
        inc.apply([("*", 1, 2)])


def test_cycle_formation_updates_partition():
    g = DiGraph.from_edges([("a", "b"), ("c", "d")])
    inc = IncrementalPatternCompressor(g)
    assert inc.partition().same_block("a", "c")
    work = g.copy()
    inc.apply([("+", "b", "a")])  # a/b become a cycle, c/d stay a chain
    work.add_edge("b", "a")
    assert_matches_batch(inc, work)
    assert not inc.partition().same_block("a", "c")
