"""Tests for the v2 snapshot layers and the mmap serving path.

Covers the gap+reference/permuted body codec (round trips across the
whole flag matrix, cross-hash-seed byte stability), the locality
reordering, the ``.obl`` offsets sidecar, the row-lazy
:class:`~repro.store.mmapgraph.MmapGraph` reader (answer identity with
the eager decode, typed errors under bit-flip fuzzing — never a wrong
graph), the catalog's ``base_mmap`` self-heal/prune contract, and the
service/executor integration (mmap epochs, publication-time prefork).
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import time

import pytest

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    attach_equivalent_leaves,
    gnm_random_graph,
    preferential_attachment_graph,
)
from repro.graph.kernels import csr_locality_order
from repro.queries.reachability import ReachabilityQuery
from repro.service import EngineService, QueryExecutor, freeze_answer
from repro.store import MmapGraph, SnapshotCatalog
from repro.store.catalog import CatalogError, _SIDECAR_NAME
from repro.store.format import (
    FLAG_GAPREF,
    FLAG_PERMUTED,
    FLAG_REVERSE,
    SnapshotError,
    SnapshotSidecar,
    _frame,
    build_sidecar,
    decode_body,
    decode_sidecar,
    encode_body,
    encode_body_v2,
    encode_sidecar,
    load_snapshot,
    save_snapshot_v2,
    scan_offsets,
    sidecar_path,
)

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _graph(seed: int = 7, n: int = 60, m: int = 180) -> DiGraph:
    g = gnm_random_graph(n, m, num_labels=3, seed=seed)
    attach_equivalent_leaves(g, [4, 3, 3], parents_per_group=2, seed=seed + 1)
    return g


def _social(scale: int = 1) -> DiGraph:
    g = preferential_attachment_graph(
        120 * scale, out_degree=4, reciprocity=0.5, seed=3
    )
    attach_equivalent_leaves(g, [6] * (10 * scale), parents_per_group=3, seed=4)
    return g


def _flag_matrix(csr: CSRGraph):
    """Every (gapref, order) combination the v2 encoder supports."""
    loc = csr_locality_order(csr)
    for gapref in (False, True):
        for order in (None, loc):
            yield gapref, order, encode_body_v2(csr, gapref=gapref, order=order)


def _assert_rows_equal(view: MmapGraph, csr: CSRGraph) -> None:
    assert view.n == csr.n and view.m == csr.m
    assert view.label_names == csr.label_names
    assert list(view.label_codes()) == list(csr.label_codes())
    assert view.node_order() == csr.node_order()
    for i in range(csr.n):
        assert list(view.successors(i)) == list(csr.successors(i))
        assert list(view.predecessors(i)) == list(csr.predecessors(i))
        assert view.out_degree(i) == csr.out_degree(i)
        assert view.in_degree(i) == csr.in_degree(i)
        assert view.label(i) == csr.label(i)


# ----------------------------------------------------------------------
# v2 body codec
# ----------------------------------------------------------------------
def test_v2_roundtrip_flag_matrix():
    csr = CSRGraph.from_digraph(_graph())
    for gapref, order, enc in _flag_matrix(csr):
        back = decode_body(enc.body, enc.flags)
        assert back.digest() == csr.digest(), (gapref, order is not None)
        assert back.buffers() == csr.buffers()
        expect = FLAG_REVERSE
        expect |= FLAG_GAPREF if gapref else 0
        expect |= FLAG_PERMUTED if order is not None else 0
        assert enc.flags == expect


def test_v2_plain_body_identical_to_v1():
    """gapref=False + no order is byte-for-byte the v1 encoding."""
    csr = CSRGraph.from_digraph(_graph(seed=9))
    enc = encode_body_v2(csr, gapref=False, order=None)
    assert enc.body == encode_body(csr)
    assert enc.flags == FLAG_REVERSE


def test_v2_offsets_match_scan():
    csr = CSRGraph.from_digraph(_social())
    for _gapref, _order, enc in _flag_matrix(csr):
        n, m, fwd, rev = scan_offsets(enc.body, enc.flags)
        assert (n, m) == (csr.n, csr.m)
        assert fwd == enc.fwd_offsets
        assert rev == enc.rev_offsets


def test_locality_order_valid_and_deterministic():
    csr = CSRGraph.from_digraph(_social())
    order = csr_locality_order(csr)
    assert sorted(order) == list(range(csr.n))  # a permutation
    assert order == csr_locality_order(csr)  # deterministic


def test_save_snapshot_v2_roundtrip_and_sidecar(tmp_path):
    g = _social()
    csr = CSRGraph.from_digraph(g)
    path = tmp_path / "g.rgs"
    digest = save_snapshot_v2(csr, path)
    assert digest == csr.digest()
    # The eager loader reads v2 files transparently.
    assert load_snapshot(path).digest() == csr.digest()
    # The sidecar written next to it describes exactly these bytes.
    sc = decode_sidecar(sidecar_path(path).read_bytes())
    assert sc == build_sidecar(path.read_bytes())
    assert sc.digest == csr.digest()


def test_reorder_auto_never_larger(tmp_path):
    csr = CSRGraph.from_digraph(_social())
    p_auto = tmp_path / "auto.rgs"
    p_plain = tmp_path / "plain.rgs"
    p_forced = tmp_path / "forced.rgs"
    save_snapshot_v2(csr, p_auto, reorder="auto")
    save_snapshot_v2(csr, p_plain, reorder=False)
    save_snapshot_v2(csr, p_forced, reorder=True)
    auto = p_auto.stat().st_size
    assert auto <= p_plain.stat().st_size
    assert auto <= p_forced.stat().st_size
    with pytest.raises(ValueError):
        save_snapshot_v2(csr, tmp_path / "x.rgs", reorder="maybe")


def test_v2_bytes_stable_across_hash_seeds():
    """The gapref+reordered body must not depend on PYTHONHASHSEED."""
    code = (
        "import sys\n"
        f"sys.path.insert(0, {SRC!r})\n"
        "from repro.graph.csr import CSRGraph\n"
        "from repro.graph.digraph import DiGraph\n"
        "from repro.graph.generators import attach_equivalent_leaves\n"
        "from repro.graph.kernels import csr_locality_order\n"
        "from repro.store.format import encode_body_v2\n"
        "g = DiGraph()\n"
        "ring = [f'core{i}' for i in range(7)]\n"
        "for a, b in zip(ring, ring[1:] + ring[:1]):\n"
        "    g.add_edge(a, b)\n"
        "for i in range(5):\n"
        "    g.add_edge(ring[i], f'hub{i}')\n"
        "    g.set_label(f'hub{i}', f'L{i % 2}')\n"
        "attach_equivalent_leaves(g, [4, 3], parents_per_group=2, seed=13)\n"
        "csr = CSRGraph.from_digraph(g)\n"
        "enc = encode_body_v2(csr, gapref=True, order=csr_locality_order(csr))\n"
        "print(enc.flags)\n"
        "print(enc.body.hex())\n"
    )
    outputs = []
    for seed in ("0", "12345"):
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=dict(os.environ, PYTHONHASHSEED=seed),
            check=True,
        )
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]


# ----------------------------------------------------------------------
# MmapGraph reader
# ----------------------------------------------------------------------
def test_mmap_equivalence_matrix(tmp_path):
    csr = CSRGraph.from_digraph(_graph(seed=11))
    for gapref, order, enc in _flag_matrix(csr):
        path = tmp_path / f"g{enc.flags}.rgs"
        path.write_bytes(_frame(enc.body, flags=enc.flags))
        sc = build_sidecar(path.read_bytes())
        claim_only = bool(enc.flags & (FLAG_GAPREF | FLAG_PERMUTED))
        # With a sidecar: open is cheap; non-canonical digests are claims
        # until to_csr() settles them.
        with MmapGraph.open(path, sc) as view:
            assert view.digest() == csr.digest()
            assert view.digest_verified == (not claim_only)
            _assert_rows_equal(view, csr)
            assert view.to_csr().buffers() == csr.buffers()
            assert view.digest_verified
        # Without one: the open scans (and for claim-only flags decodes)
        # the body itself, so the digest is always verified.
        with MmapGraph.open(path) as view:
            assert view.digest() == csr.digest()
            assert view.digest_verified
            _assert_rows_equal(view, csr)


def test_mmap_tiny_row_cache_still_exact(tmp_path):
    csr = CSRGraph.from_digraph(_social())
    path = tmp_path / "g.rgs"
    save_snapshot_v2(csr, path)
    sc = decode_sidecar(sidecar_path(path).read_bytes())
    with MmapGraph.open(path, sc, row_cache=2) as view:
        _assert_rows_equal(view, csr)
    with MmapGraph.open(path, sc, row_cache=0) as view:
        assert view.to_csr().digest() == csr.digest()


def test_mmap_close_and_protocol(tmp_path):
    csr = CSRGraph.from_digraph(_graph(seed=3))
    path = tmp_path / "g.rgs"
    save_snapshot_v2(csr, path)
    view = MmapGraph.open(path, decode_sidecar(sidecar_path(path).read_bytes()))
    some = csr.node_order()[0]
    assert view.has_node(some) and some in view
    assert view.id_of(some) == csr.id_of(some)
    assert view.node_of(0) == csr.node_of(0)
    assert len(view) == csr.n and view.graph_size() == csr.n + csr.m
    assert view.content_identity()[0] == csr.digest()
    with pytest.raises(TypeError):
        import pickle

        pickle.dumps(view)
    view.close()
    view.close()  # idempotent
    with pytest.raises(ValueError):
        view.successors(0)


def test_mmap_rejects_foreign_sidecar(tmp_path):
    a = CSRGraph.from_digraph(_graph(seed=1))
    b = CSRGraph.from_digraph(_graph(seed=2))
    pa, pb = tmp_path / "a.rgs", tmp_path / "b.rgs"
    save_snapshot_v2(a, pa)
    save_snapshot_v2(b, pb)
    foreign = decode_sidecar(sidecar_path(pb).read_bytes())
    with pytest.raises(SnapshotError):
        MmapGraph.open(pa, foreign)


def test_mmap_requires_reverse_section(tmp_path):
    """A frame without FLAG_REVERSE is refused by the row-lazy reader
    (rebuilding predecessors would mean a full decode — the eager
    loader's job), before any body validation runs."""
    csr = CSRGraph.from_digraph(_graph(seed=4))
    enc = encode_body_v2(csr, gapref=False, order=None)
    path = tmp_path / "fwd.rgs"
    path.write_bytes(_frame(enc.body, flags=enc.flags & ~FLAG_REVERSE))
    with pytest.raises(SnapshotError):
        MmapGraph.open(path)


# ----------------------------------------------------------------------
# Corruption: typed errors, never a wrong graph
# ----------------------------------------------------------------------
def _tiny_v2_file(tmp_path):
    g = DiGraph()
    for i in range(8):
        g.add_edge(f"n{i}", f"n{(i + 1) % 8}")
        g.add_edge(f"n{i}", f"n{(i + 3) % 8}")
    g.set_label("n0", "L")
    csr = CSRGraph.from_digraph(g)
    path = tmp_path / "tiny.rgs"
    save_snapshot_v2(csr, path, reorder=True)
    return csr, path


def test_file_bitflip_always_typed_error(tmp_path):
    """Flip every byte of a v2 file: open+decode either raises a
    ``SnapshotError`` or serves the original graph — never a wrong one."""
    csr, path = _tiny_v2_file(tmp_path)
    data = bytearray(path.read_bytes())
    sc = decode_sidecar(sidecar_path(path).read_bytes())
    target = tmp_path / "flipped.rgs"
    survived = 0
    for pos in range(len(data)):
        flipped = bytearray(data)
        flipped[pos] ^= 0x41
        target.write_bytes(bytes(flipped))
        try:
            with MmapGraph.open(target, sc) as view:
                got = view.to_csr()
        except SnapshotError:
            continue
        survived += 1
        assert got.digest() == csr.digest()
        assert got.buffers() == csr.buffers()
    # CRC-32 catches every single-byte body flip and the header fields are
    # all load-bearing, so nothing should actually survive.
    assert survived == 0


def test_file_bitflip_eager_loader_typed_error(tmp_path):
    csr, path = _tiny_v2_file(tmp_path)
    data = bytearray(path.read_bytes())
    rng = random.Random(5)
    target = tmp_path / "flipped.rgs"
    for _ in range(200):
        flipped = bytearray(data)
        flipped[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
        target.write_bytes(bytes(flipped))
        try:
            got = load_snapshot(target)
        except SnapshotError:
            continue
        assert got.digest() == csr.digest()


def test_sidecar_bitflip_always_typed_error(tmp_path):
    """Flip every byte of the ``.obl``: decoding raises, or the decoded
    sidecar is rejected by open, or the view serves the original rows."""
    csr, path = _tiny_v2_file(tmp_path)
    raw = bytearray(sidecar_path(path).read_bytes())
    for pos in range(len(raw)):
        flipped = bytearray(raw)
        flipped[pos] ^= 0x41
        try:
            sc = decode_sidecar(bytes(flipped))
        except SnapshotError:
            continue
        try:
            with MmapGraph.open(path, sc) as view:
                got = view.to_csr()
        except SnapshotError:
            continue
        assert got.digest() == csr.digest()
        assert got.buffers() == csr.buffers()


def test_sidecar_offset_tampering_cannot_survive_materialisation(tmp_path):
    """Perturbed row offsets (CRC/len/flags kept consistent so the
    sidecar is accepted) must be caught somewhere typed: most raise at
    open or row decode; a shift that happens to parse as a plausible row
    cannot survive ``to_csr()``, whose digest check refuses to return a
    graph other than the one the sidecar names."""
    csr, path = _tiny_v2_file(tmp_path)
    good = decode_sidecar(sidecar_path(path).read_bytes())
    rng = random.Random(9)
    for _ in range(150):
        fwd = list(good.fwd)
        rev = list(good.rev)
        section = fwd if rng.random() < 0.5 else rev
        if not section:
            continue
        section[rng.randrange(len(section))] += rng.choice([-3, -2, -1, 1, 2, 3])
        # Round-trip through the codec so the tampered sidecar is exactly
        # what a consistent (e.g. buggy-writer) .obl would decode to.
        try:
            tampered = decode_sidecar(encode_sidecar(SnapshotSidecar(
                good.crc, good.body_len, good.flags, good.n, good.m,
                fwd, rev, good.digest,
            )))
        except SnapshotError:
            continue  # the codec itself rejects it (non-monotonic etc.)
        rows_ok = True
        try:
            with MmapGraph.open(path, tampered) as view:
                for i in range(view.n):
                    if (
                        list(view.successors(i)) != list(csr.successors(i))
                        or list(view.predecessors(i)) != list(csr.predecessors(i))
                    ):
                        rows_ok = False
                if rows_ok:
                    continue
                # A wrong row slipped past per-row structure checks; the
                # materialisation digest gate must refuse it.
                with pytest.raises(SnapshotError):
                    view.to_csr()
        except SnapshotError:
            continue


def test_decode_body_fuzz_only_typed_errors():
    """Mutations/truncations of a raw v2 body (no CRC shield here) raise
    ``SnapshotError`` — not IndexError/RecursionError/Unicode errors."""
    csr = CSRGraph.from_digraph(_graph(seed=13, n=30, m=70))
    enc = encode_body_v2(csr, gapref=True, order=csr_locality_order(csr))
    rng = random.Random(31)
    body = bytearray(enc.body)
    for _ in range(300):
        mutated = bytearray(body)
        for _k in range(rng.randrange(1, 4)):
            mutated[rng.randrange(len(mutated))] = rng.randrange(256)
        if rng.random() < 0.3:
            mutated = mutated[: rng.randrange(len(mutated))]
        try:
            got = decode_body(bytes(mutated), enc.flags)
        except SnapshotError:
            continue
        # Undetected mutation: must still be *a* well-formed graph.
        got.digest()


# ----------------------------------------------------------------------
# Catalog integration
# ----------------------------------------------------------------------
def test_catalog_base_mmap_persists_memoises_and_self_heals(tmp_path):
    g = _graph(seed=21)
    csr = CSRGraph.from_digraph(g)
    catalog = SnapshotCatalog(tmp_path / "cat")
    digest = catalog.put(g)
    sc_file = tmp_path / "cat" / digest / _SIDECAR_NAME

    view = catalog.base_mmap(digest)
    assert sc_file.exists()  # sidecar persisted on first open
    assert view.digest() == digest
    assert catalog.base_mmap(digest) is view  # memoised
    _assert_rows_equal(view, csr)

    # Corrupt sidecar on disk: quarantined, rebuilt, rewritten — and the
    # served view is still the right graph.
    catalog2 = SnapshotCatalog(tmp_path / "cat")
    sc_file.write_bytes(b"garbage" * 30)
    view2 = catalog2.base_mmap(digest)
    assert view2.digest() == digest
    assert catalog2.quarantined()
    assert decode_sidecar(sc_file.read_bytes()).digest == digest

    # Sidecar copied from another entry: rejected, rescanned, healed.
    other = catalog.put(_graph(seed=22))
    catalog.base_mmap(other)  # materialises the other entry's sidecar
    catalog3 = SnapshotCatalog(tmp_path / "cat")
    sc_file.write_bytes(
        (tmp_path / "cat" / other / _SIDECAR_NAME).read_bytes()
    )
    view3 = catalog3.base_mmap(digest)
    assert view3.digest() == digest
    assert view3.to_csr().buffers() == csr.buffers()

    with pytest.raises(CatalogError):
        catalog.base_mmap("0" * 64)


def test_catalog_prune_accounts_and_removes_sidecar(tmp_path):
    catalog = SnapshotCatalog(tmp_path / "cat")
    d1 = catalog.put(_graph(seed=31))
    time.sleep(0.02)  # LRU order is mtime-based
    d2 = catalog.put(_graph(seed=32))
    catalog.base_mmap(d1)
    catalog.base_mmap(d2)
    entry = tmp_path / "cat" / d1
    base_size = (entry / "base.rgs").stat().st_size
    sc_size = (entry / _SIDECAR_NAME).stat().st_size
    assert catalog._entry_bytes(d1) >= base_size + sc_size

    catalog.base_mmap(d2)  # refresh d2 -> d1 is the LRU victim
    evicted = catalog.prune(max_entries=1)
    assert evicted == [d1]
    assert not entry.exists()  # directory, base and sidecar all gone
    with pytest.raises(CatalogError):
        catalog.base_mmap(d1)  # memo dropped with the entry
    assert catalog.base_mmap(d2).digest() == d2


def test_catalog_pruned_view_keeps_serving(tmp_path):
    """POSIX unlink semantics: a pinned view outlives its entry."""
    g = _graph(seed=41)
    csr = CSRGraph.from_digraph(g)
    catalog = SnapshotCatalog(tmp_path / "cat")
    d1 = catalog.put(g)
    view = catalog.base_mmap(d1)
    time.sleep(0.02)
    catalog.put(_graph(seed=42))
    assert d1 in catalog.prune(max_entries=1)
    _assert_rows_equal(view, csr)  # still exact after eviction


# ----------------------------------------------------------------------
# Service + executor integration
# ----------------------------------------------------------------------
def _service_workload(g: DiGraph, seed: int, pairs: int = 25):
    rng = random.Random(seed)
    nodes = g.node_list()
    return [
        ReachabilityQuery(rng.choice(nodes), rng.choice(nodes))
        for _ in range(pairs)
    ]


def test_service_mmap_epochs_answer_identity(tmp_path):
    g = _graph(seed=51)
    catalog = SnapshotCatalog(tmp_path / "cat")
    lazy = EngineService(g.copy(), catalog, mmap_epochs=True)
    eager = EngineService(g.copy())
    assert lazy.describe()["mmap_epochs"] is True
    assert lazy.current.describe()["mmap"] is True
    try:
        for on in ("auto", "original"):
            for q in _service_workload(g, seed=1):
                assert freeze_answer(lazy.query(q, on=on)) == freeze_answer(
                    eager.query(q, on=on)
                )
        nodes = g.node_list()
        deltas = [("+", nodes[0], nodes[-1]), ("-", nodes[1], nodes[2])]
        assert lazy.apply(deltas).applied == eager.apply(deltas).applied
        assert lazy.current.describe()["mmap"] is True
        for q in _service_workload(g, seed=2):
            assert freeze_answer(lazy.query(q)) == freeze_answer(eager.query(q))
        # The mmap path actually served: no silent fallback to eager.
        assert lazy.counters.get("mmap_epoch_fallbacks", 0) == 0
    finally:
        lazy.close()
        eager.close()


def test_service_mmap_epochs_requires_catalog_and_csr(tmp_path):
    with pytest.raises(ValueError):
        EngineService(_graph(seed=52), mmap_epochs=True)
    catalog = SnapshotCatalog(tmp_path / "cat")
    with pytest.raises(ValueError):
        EngineService(
            _graph(seed=53), catalog, backend="dict", mmap_epochs=True
        )


def test_executor_prefork_on_publish(tmp_path):
    g = _graph(seed=61)
    service = EngineService(g.copy())
    direct = EngineService(g.copy())
    queries = _service_workload(g, seed=3, pairs=8)
    with QueryExecutor(service, 2, mode="fork", max_batch=4) as ex:
        assert ex._pool is not None  # forked at construction, not first use
        first = ex._pool
        got = ex.submit_batch(queries).result(timeout=60)
        assert [freeze_answer(a) for a in got] == [
            freeze_answer(direct.query(q)) for q in queries
        ]
        nodes = g.node_list()
        service.apply([("+", nodes[0], nodes[-1])])
        direct.apply([("+", nodes[0], nodes[-1])])
        # Publication schedules a background prefork for the new epoch.
        deadline = time.time() + 30
        while time.time() < deadline:
            pool = ex._pool
            if pool is not None and pool is not first and not pool.broken:
                break
            time.sleep(0.02)
        else:
            pytest.fail("publish hook never preforked the new epoch's pool")
        got = ex.submit_batch(queries).result(timeout=60)
        assert [freeze_answer(a) for a in got] == [
            freeze_answer(direct.query(q)) for q in queries
        ]
    assert not service._publish_hooks  # hook removed on shutdown
    service.close()
    direct.close()
