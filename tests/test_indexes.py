"""Tests for the index structures, including the paper's counterexamples.

Sections 3 and 4 argue that bisimulation-based *index graphs* (1-index,
A(k)-index) are not query preserving: these tests reproduce the exact
Fig. 4 and Fig. 6 scenarios and verify that this library's compressions get
the same queries right.
"""

import random

from repro.core.pattern import compress_pattern
from repro.core.reachability import compress_reachability
from repro.graph.generators import gnm_random_graph
from repro.graph.traversal import path_exists
from repro.index.interval import IntervalIndex
from repro.index.kindex import KIndex, k_bisimulation_partition
from repro.index.twohop import TwoHopIndex
from repro.queries.matching import match
from repro.queries.pattern import GraphPattern


# ----------------------------------------------------------------------
# 2-hop and interval indexes answer correctly
# ----------------------------------------------------------------------
def test_twohop_correct_randomized():
    rng = random.Random(3)
    for trial in range(10):
        n = rng.randrange(5, 35)
        g = gnm_random_graph(n, rng.randrange(0, min(130, n * (n - 1))), seed=trial * 5)
        idx = TwoHopIndex(g)
        for _ in range(100):
            u, v = rng.randrange(n), rng.randrange(n)
            assert idx.query(u, v) == path_exists(g, u, v)
        entries, avg = idx.stats()
        assert entries >= 0 and avg >= 0
        assert idx.memory_cost() > 0


def test_interval_correct_randomized():
    rng = random.Random(4)
    for trial in range(10):
        n = rng.randrange(5, 35)
        g = gnm_random_graph(n, rng.randrange(0, min(130, n * (n - 1))), seed=trial * 7)
        idx = IntervalIndex(g, dimensions=2, seed=trial)
        for _ in range(100):
            u, v = rng.randrange(n), rng.randrange(n)
            assert idx.query(u, v) == path_exists(g, u, v)


def test_twohop_on_compressed_graph_is_smaller():
    g = gnm_random_graph(60, 300, seed=8)
    gr = compress_reachability(g).compressed
    assert TwoHopIndex(gr).entry_count() <= TwoHopIndex(g).entry_count()


# ----------------------------------------------------------------------
# The paper's negative results
# ----------------------------------------------------------------------
def test_fig4_one_index_breaks_reachability(fig4_g2):
    """Fig. 4: the 1-index merges C1/C2, destroying QR(C1, E2)."""
    g = fig4_g2
    one_index = KIndex(g)  # full backward bisimulation, the 1-index [19]
    assert one_index.node_class("C1") == one_index.node_class("C2")
    ig = one_index.index_graph
    # On the index graph the merged [C] node reaches [E2] ...
    assert path_exists(ig, one_index.node_class("C1"), one_index.node_class("E2"))
    # ... but in G, C1 does not reach E2 — the index gives a wrong answer.
    assert not path_exists(g, "C1", "E2")
    # Our reachability compression keeps C1 and C2 apart and answers right.
    rc = compress_reachability(g)
    assert not rc.same_class("C1", "C2")
    assert rc.query("C1", "E2") is False
    assert rc.query("C2", "E2") is True


def test_fig6_ak_index_breaks_patterns(fig6_g1):
    """Fig. 6: A(1) merges all B nodes; the 2-edge pattern over-matches."""
    g = fig6_g1
    a1_index = KIndex(g, k=1)
    b_class = {a1_index.node_class(b) for b in ("B1", "B2", "B3", "B4", "B5")}
    assert len(b_class) == 1  # all five B nodes merged (1-bisimilar)

    q = GraphPattern()
    q.add_node("B", "B")
    q.add_node("C", "C")
    q.add_node("D", "D")
    q.add_edge("B", "C", 1)
    q.add_edge("B", "D", 1)

    truth = match(q, g)
    assert truth["B"] == {"B1", "B5"}  # the paper: "only B1 and B5"

    index_answer = match(q, a1_index.index_graph)
    expanded_b = set(a1_index.expand(index_answer["B"]))
    assert expanded_b == {"B1", "B2", "B3", "B4", "B5"}  # over-matches

    # The bisimulation-based compression answers exactly.
    pc = compress_pattern(g)
    assert pc.query(q, match)["B"] == {"B1", "B5"}


def test_k_bisimulation_limits():
    g = gnm_random_graph(20, 60, num_labels=3, seed=6)
    # k = 0 is the label partition.
    p0 = k_bisimulation_partition(g, 0, direction="forward")
    assert p0.block_count() == len(g.label_set())
    # Forward fixpoint equals the maximum bisimulation.
    from repro.core.bisimulation import bisimulation_partition

    pk = k_bisimulation_partition(g, 10 ** 6, direction="forward")
    assert pk.as_frozen() == bisimulation_partition(g).as_frozen()
    # Partitions refine monotonically with k.
    sizes = [
        k_bisimulation_partition(g, k, direction="forward").block_count()
        for k in range(5)
    ]
    assert sizes == sorted(sizes)


def test_kindex_rejects_bad_args():
    import pytest

    g = gnm_random_graph(5, 6, seed=1)
    with pytest.raises(ValueError):
        k_bisimulation_partition(g, -1)
    with pytest.raises(ValueError):
        k_bisimulation_partition(g, 1, direction="sideways")
    with pytest.raises(ValueError):
        k_bisimulation_partition(g, 1, backend="numpy")
    with pytest.raises(ValueError):
        IntervalIndex(g, dimensions=0)


# ----------------------------------------------------------------------
# CSR construction backends cross-validated against the dict paths
# ----------------------------------------------------------------------
def test_twohop_csr_backend_matches_dict():
    """Both backends (and a pre-frozen snapshot) answer every query alike."""
    from repro.graph.csr import CSRGraph

    rng = random.Random(11)
    for trial in range(12):
        n = rng.randrange(3, 40)
        m = rng.randrange(0, min(120, n * (n - 1) // 2))
        g = gnm_random_graph(n, m, num_labels=3, seed=trial * 3 + 1)
        via_csr = TwoHopIndex(g)  # default backend freezes internally
        via_dict = TwoHopIndex(g, backend="dict")
        via_snapshot = TwoHopIndex(CSRGraph.from_digraph(g))
        for _ in range(40):
            u, v = rng.randrange(n), rng.randrange(n)
            want = path_exists(g, u, v)
            assert via_csr.query(u, v) == want
            assert via_dict.query(u, v) == want
            assert via_snapshot.query(u, v) == want
        assert via_csr.entry_count() >= 0 and via_csr.memory_cost() > 0


def test_k_bisimulation_csr_backend_matches_dict():
    """Same ``~_k`` partition from frozen arrays and dict adjacency."""
    from repro.graph.csr import CSRGraph

    rng = random.Random(13)
    for trial in range(12):
        n = rng.randrange(3, 35)
        m = rng.randrange(0, min(100, n * (n - 1) // 2))
        g = gnm_random_graph(n, m, num_labels=3, seed=trial * 7 + 2)
        csr = CSRGraph.from_digraph(g)
        for k in (0, 1, 2, 6, 10 ** 6):
            for direction in ("backward", "forward"):
                p_csr = k_bisimulation_partition(g, k, direction, backend="csr")
                p_dict = k_bisimulation_partition(g, k, direction, backend="dict")
                p_frozen = k_bisimulation_partition(csr, k, direction)
                assert p_csr.as_frozen() == p_dict.as_frozen()
                assert p_frozen.as_frozen() == p_dict.as_frozen()


def test_k_bisimulation_csr_block_ids_canonical():
    """CSR-backend block ids follow first-member node insertion order."""
    g = gnm_random_graph(25, 70, num_labels=4, seed=21)
    p = k_bisimulation_partition(g, 3, backend="csr")
    order = {v: i for i, v in enumerate(g.node_list())}
    firsts = [min(order[v] for v in p.members(bid)) for bid in sorted(p.block_ids())]
    assert firsts == sorted(firsts)


def test_kindex_csr_backend_matches_dict_quotient():
    g = gnm_random_graph(20, 55, num_labels=3, seed=5)
    for k in (None, 1, 2):
        via_csr = KIndex(g, k=k)
        via_dict = KIndex(g, k=k, backend="dict")

        # Same blocks (ids may differ), same index-graph size.
        def blocks(idx):
            return {frozenset(idx.members(idx.node_class(v))) for v in g.nodes()}

        assert blocks(via_csr) == blocks(via_dict)
        assert via_csr.graph_size() == via_dict.graph_size()
