"""Chaos and degradation tests for the hardened serving stack.

The invariant every test here enforces, one layer at a time and then all
at once: *degradation may change latency and route — never answers*.
Faults are injected through seeded :class:`~repro.faults.plan.FaultPlan`
schedules, so a failing case replays exactly.
"""

import os

import pytest

from repro.engine import GraphEngine
from repro.engine.counters import RouterStats
from repro.engine.router import QueryRouter, RepresentationUnavailable
from repro.faults.breaker import OPEN, CircuitBreaker
from repro.faults.plan import FaultPlan, FaultRule
from repro.graph.generators import attach_equivalent_leaves, gnm_random_graph
from repro.queries.reachability import ReachabilityQuery
from repro.service import (
    ApplyError,
    EngineService,
    QueryExecutor,
    QueryTimeout,
    RetriesExhausted,
    ServiceFault,
    chaos_plan,
    freeze_answer,
    run_chaos,
)
from repro.service.epoch_stress import direct_answer

HAS_FORK = hasattr(os, "fork")


def _graph(seed=11, n=40, m=110):
    g = gnm_random_graph(n, m, num_labels=4, seed=seed)
    attach_equivalent_leaves(g, [4, 3], parents_per_group=2, seed=seed + 1)
    return g


def _reach_queries(graph, count=6, seed=5):
    import random

    rng = random.Random(seed)
    nodes = graph.node_list()
    return [
        ReachabilityQuery(rng.choice(nodes), rng.choice(nodes))
        for _ in range(count)
    ]


# ----------------------------------------------------------------------
# Engine: sticky per-epoch degradation, fallback routing
# ----------------------------------------------------------------------
class TestEpochDegradation:
    def test_failed_build_degrades_epoch_and_answers_stay_exact(self):
        g = _graph()
        queries = _reach_queries(g)
        expected = [freeze_answer(direct_answer(g, q)) for q in queries]

        engine = GraphEngine(g.copy())
        epoch = engine.epoch(0)
        plan = FaultPlan(
            [FaultRule(point="epoch.build.reachability", kind="error",
                       times=None)]
        )
        stats = RouterStats()
        router = QueryRouter()
        with plan.installed():
            with pytest.raises(RepresentationUnavailable) as excinfo:
                epoch.artifact("reachability")
            assert excinfo.value.key == "reachability"
            # The router's production dispatch path absorbs the
            # degradation: direct-on-G answers, fallback recorded.
            got = [
                freeze_answer(router.dispatch(q, epoch, stats=stats))
                for q in queries
            ]
        assert got == expected
        assert stats.fallbacks("reachability") == len(queries)
        # Sticky for the epoch's lifetime: the plan is gone, yet the epoch
        # does not retry the build (no rebuild storms mid-epoch).
        with pytest.raises(RepresentationUnavailable):
            epoch.artifact("reachability")
        assert "reachability" in epoch.describe()["degraded"]

    def test_build_deadline_degrades_slow_builds(self):
        g = _graph()
        engine = GraphEngine(g.copy())
        epoch = engine.epoch(0, build_deadline_s=0.05)
        plan = FaultPlan(
            [FaultRule(point="epoch.build.pattern", kind="delay",
                       delay_s=0.5, times=None)]
        )
        with plan.installed():
            with pytest.raises(RepresentationUnavailable) as excinfo:
                epoch.artifact("pattern")
        assert "deadline" in excinfo.value.reason
        # The undegraded representation still builds normally.
        assert epoch.artifact("reachability") is not None

    def test_next_epoch_is_clean(self):
        g = _graph()
        service = EngineService(g.copy(), journal=True)
        plan = FaultPlan(
            [FaultRule(point="epoch.build.*", kind="error", times=None)]
        )
        q = _reach_queries(g, count=1)[0]
        with plan.installed():
            degraded = service.query(q)  # routed through the fallback
        assert freeze_answer(degraded) == freeze_answer(direct_answer(g, q))
        service.refreeze()  # publish a fresh epoch, faults uninstalled
        with service.pin() as epoch:
            assert epoch.artifact("reachability") is not None
            assert epoch.describe()["degraded"] == {}
        service.close()


# ----------------------------------------------------------------------
# Service: transactional apply with rollback
# ----------------------------------------------------------------------
class TestTransactionalApply:
    def test_publish_failure_rolls_back_and_later_apply_succeeds(self):
        g = _graph()
        service = EngineService(g.copy(), journal=True)
        queries = _reach_queries(g)
        before = [freeze_answer(service.query(q)) for q in queries]

        plan = FaultPlan(
            [FaultRule(point="service.publish", kind="error", times=1)]
        )
        batch = [("+", g.node_list()[0], g.node_list()[1])]
        with plan.installed():
            with pytest.raises(ApplyError) as excinfo:
                service.apply(batch)
        assert excinfo.value.version == 0
        assert service.version == 0
        assert service.counters["apply_rollbacks"] == 1
        # Post-rollback the service answers exactly as before the attempt.
        assert [freeze_answer(service.query(q)) for q in queries] == before

        # The same batch applies cleanly once the fault is gone, and the
        # journal reconstructs both versions.
        service.apply(batch)
        assert service.version == 1
        g0, g1 = service.graph_at(0), service.graph_at(1)
        assert not g0.has_edge(batch[0][1], batch[0][2])
        assert g1.has_edge(batch[0][1], batch[0][2])
        service.close()

    def test_apply_failure_before_mutation_also_rolls_back(self):
        g = _graph()
        service = EngineService(g.copy(), journal=True)
        plan = FaultPlan(
            [FaultRule(point="service.apply", kind="io_error", times=1)]
        )
        with plan.installed():
            with pytest.raises(ApplyError):
                service.apply([("+", g.node_list()[2], g.node_list()[3])])
        assert service.version == 0
        service.close()

    def test_caller_input_errors_are_not_wrapped(self):
        service = EngineService(_graph().copy())
        with pytest.raises((TypeError, ValueError)):
            service.apply([("bogus-op", 1, 2)])
        service.close()


# ----------------------------------------------------------------------
# Executor: timeouts, retries, breaker, worker death
# ----------------------------------------------------------------------
class TestExecutorHardening:
    def test_transient_faults_are_retried_to_success(self):
        g = _graph()
        service = EngineService(g.copy())
        ex = QueryExecutor(service, 1, retries=3, backoff_s=0.001)
        queries = _reach_queries(g, count=4)
        plan = FaultPlan(
            [FaultRule(point="executor.dispatch", kind="io_error", times=2)]
        )
        try:
            with plan.installed():
                answers = ex.map(queries)
            assert plan.fired() == 2
            assert [freeze_answer(a) for a in answers] == [
                freeze_answer(direct_answer(g, q)) for q in queries
            ]
        finally:
            ex.shutdown()
            service.close()

    def test_retries_exhausted_is_typed_with_cause(self):
        g = _graph()
        service = EngineService(g.copy())
        ex = QueryExecutor(service, 1, retries=1, backoff_s=0.001)
        plan = FaultPlan(
            [FaultRule(point="executor.dispatch", kind="io_error", times=None)]
        )
        try:
            with plan.installed():
                fut = ex.submit(_reach_queries(g, count=1)[0])
                with pytest.raises(RetriesExhausted) as excinfo:
                    fut.result(timeout=30.0)
            assert isinstance(excinfo.value.__cause__, OSError)
        finally:
            ex.shutdown()
            service.close()

    def test_slow_dispatch_raises_query_timeout(self):
        g = _graph()
        service = EngineService(g.copy())
        ex = QueryExecutor(service, 1, timeout_s=0.05, retries=0)
        plan = FaultPlan(
            [FaultRule(point="executor.dispatch", kind="delay",
                       delay_s=0.5, times=None)]
        )
        try:
            with plan.installed():
                fut = ex.submit(_reach_queries(g, count=1)[0])
                with pytest.raises(QueryTimeout):
                    fut.result(timeout=30.0)
        finally:
            ex.shutdown()
            service.close()

    def test_breaker_trips_then_degrades_to_exact_answers(self):
        g = _graph()
        queries = _reach_queries(g, count=5)
        service = EngineService(g.copy())
        breaker = CircuitBreaker(threshold=2, cooldown_s=60.0)
        ex = QueryExecutor(service, 1, retries=0, breaker=breaker)
        plan = FaultPlan(
            [FaultRule(point="executor.dispatch", kind="io_error", times=2)]
        )
        try:
            with plan.installed():
                # Two failures trip the reachability circuit ...
                for q in queries[:2]:
                    with pytest.raises(ServiceFault):
                        ex.submit(q).result(timeout=30.0)
                assert breaker.state("reachability") == OPEN
                # ... so later queries route direct-on-G without even
                # attempting the tripped representation — and stay exact.
                got = [
                    freeze_answer(ex.submit(q).result(timeout=30.0))
                    for q in queries[2:]
                ]
            assert got == [
                freeze_answer(direct_answer(g, q)) for q in queries[2:]
            ]
            assert service.stats.fallbacks("reachability") >= len(queries[2:])
        finally:
            ex.shutdown()
            service.close()

    @pytest.mark.skipif(not HAS_FORK, reason="requires POSIX fork")
    def test_fork_worker_death_recovers_with_exact_answers(self):
        g = _graph()
        queries = _reach_queries(g, count=4)
        service = EngineService(g.copy())
        # after=1: each forked generation survives its first task, dies on
        # its second — the parent must detect the death, respawn the pool
        # and resubmit the orphaned task.
        plan = FaultPlan(
            [FaultRule(point="executor.fork.worker", kind="kill",
                       after=1, times=1)]
        )
        ex = QueryExecutor(service, 2, mode="fork", retries=3)
        try:
            with plan.installed():
                answers = [
                    ex.submit(q).result(timeout=60.0) for q in queries
                ]
            assert [freeze_answer(a) for a in answers] == [
                freeze_answer(direct_answer(g, q)) for q in queries
            ]
        finally:
            ex.shutdown()
            service.close()


# ----------------------------------------------------------------------
# The full chaos harness
# ----------------------------------------------------------------------
class TestChaosHarness:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_thread_chaos_never_changes_answers(self, tmp_path, seed):
        report = run_chaos(
            _graph(), mode="thread", workers=2, seed=seed,
            writer_batches=3, queries_per_reader=10,
            catalog_dir=str(tmp_path),
        )
        assert report["unhandled"] == []
        assert report["mismatches"] == 0
        assert report["delivered"] > 0
        assert report["faults"]["total_fired"] > 0  # chaos actually happened

    @pytest.mark.skipif(not HAS_FORK, reason="requires POSIX fork")
    def test_fork_chaos_never_changes_answers(self, tmp_path):
        report = run_chaos(
            _graph(), mode="fork", workers=2, seed=2,
            writer_batches=3, queries_per_reader=8,
            catalog_dir=str(tmp_path),
        )
        assert report["unhandled"] == []
        assert report["mismatches"] == 0
        assert report["delivered"] > 0

    def test_chaos_plan_is_deterministic_per_seed(self):
        a, b = chaos_plan(7), chaos_plan(7)
        assert [r.point for r in a.rules] == [r.point for r in b.rules]
        assert a.seed == b.seed == 7
        fork = chaos_plan(7, mode="fork")
        assert any(r.kind == "kill" for r in fork.rules)
        assert not any(r.kind == "kill" for r in a.rules)
