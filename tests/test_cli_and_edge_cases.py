"""CLI coverage and edge cases across the public API."""

import pytest

from repro import (
    DiGraph,
    GraphPattern,
    IncrementalPatternCompressor,
    IncrementalReachabilityCompressor,
    compress_pattern,
    compress_reachability,
    match,
)
from repro.bench.__main__ import main as bench_main
from repro.bench.harness import run_experiment
from repro.queries.matching import MatchContext


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_bench_cli_unknown_experiment(capsys):
    assert bench_main(["fig99"]) == 2
    assert "error" in capsys.readouterr().err


def test_bench_cli_runs_one_experiment(capsys):
    # fig12i is the fastest experiment; exit code 0 means checks passed.
    assert bench_main(["fig12i"]) == 0
    out = capsys.readouterr().out
    assert "fig12i" in out and "PASS" in out


def test_ablations_experiment_passes():
    result = run_experiment("ablations")
    assert result.passed(), result.failed_checks()


# ----------------------------------------------------------------------
# Degenerate graphs through the whole pipeline
# ----------------------------------------------------------------------
def test_isolated_nodes_compress_together():
    g = DiGraph()
    for v in range(5):
        g.add_node(v)
    rc = compress_reachability(g)
    # Isolated nodes share (∅, ∅) signatures: one hypernode.
    assert rc.compressed.order() == 1
    assert rc.query(0, 0) is True
    assert rc.query(0, 1) is False
    pc = compress_pattern(g)
    assert pc.compressed.order() == 1


def test_two_node_cycle_pipeline():
    g = DiGraph.from_edges([("a", "b"), ("b", "a")])
    rc = compress_reachability(g)
    assert rc.compressed.order() == 1
    assert rc.query("a", "b") and rc.query("b", "a")
    pc = compress_pattern(g)
    assert pc.compressed.order() == 1
    assert pc.compressed.has_edge(
        pc.node_class("a"), pc.node_class("a")
    )  # quotient keeps the self-loop for pattern semantics


def test_pattern_self_loop_query_on_cycle():
    g = DiGraph.from_edges([("a", "b"), ("b", "a")])
    q = GraphPattern()
    q.add_node(0, "σ")
    q.add_edge(0, 0, 2)  # node within 2 hops of itself
    pc = compress_pattern(g)
    assert pc.query(q, match) == match(q, g) == {0: {"a", "b"}}


def test_incremental_from_empty_graph():
    g = DiGraph()
    g.add_node("seed")
    inc_r = IncrementalReachabilityCompressor(g)
    inc_p = IncrementalPatternCompressor(g)
    inc_r.apply([("+", "seed", "x"), ("+", "x", "y"), ("+", "y", "seed")])
    inc_p.apply([("+", "seed", "x"), ("+", "x", "y"), ("+", "y", "seed")])
    assert inc_r.compression().query("x", "seed") is True
    assert inc_p.compression().compressed.order() == 1  # one 3-cycle class


def test_empty_batch_is_noop():
    g = DiGraph.from_edges([(1, 2)])
    inc = IncrementalReachabilityCompressor(g)
    before = inc.compression().stats()
    inc.apply([])
    assert inc.compression().stats() == before


def test_match_context_star_cache_reuse():
    g = DiGraph.from_edges([(1, 2), (2, 3), (3, 1), (3, 4)])
    ctx = MatchContext(g)
    star1 = ctx.star_reach()
    star2 = ctx.star_reach()
    assert star1 is star2  # cached
    # Cycle members reach themselves; the sink does not.
    assert star1[1] & (1 << ctx.indexer.index(1))
    assert not star1[4]


def test_compression_stats_equality_semantics():
    g = DiGraph.from_edges([(1, 2)])
    a = compress_reachability(g).stats()
    b = compress_reachability(g).stats()
    assert a == b  # frozen dataclass equality


# ----------------------------------------------------------------------
# Benchmark-regression gate (python -m repro.bench check)
# ----------------------------------------------------------------------
def _bench_payload(experiment, rows, gates=()):
    return {
        "experiment": experiment,
        "rows": rows,
        "checks": [
            {"description": d, "passed": ok, "gate": True} for d, ok in gates
        ],
    }


def test_regression_check_passes_within_tolerance(tmp_path, capsys):
    import json
    from repro.bench.__main__ import main as bench_main

    base = tmp_path / "baselines"
    cur = tmp_path / "current"
    base.mkdir(), cur.mkdir()
    baseline = _bench_payload(
        "kernels",
        [{"graph": "g", "task": "scc+sig", "speedup": 3.0}],
        gates=[("byte-identical backends", True)],
    )
    current = _bench_payload(
        "kernels",
        [{"graph": "g", "task": "scc+sig", "speedup": 2.0}],  # -33% < 50% band
        gates=[("byte-identical backends", True)],
    )
    (base / "BENCH_kernels.json").write_text(json.dumps(baseline))
    (cur / "BENCH_kernels.json").write_text(json.dumps(current))
    assert bench_main(["check", "--baseline", str(base), "--current", str(cur)]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out


def test_regression_check_fails_on_ratio_collapse_and_gate(tmp_path, capsys):
    import json
    from repro.bench.__main__ import main as bench_main
    from repro.bench.regression import check_against_baselines

    base = tmp_path / "baselines"
    cur = tmp_path / "current"
    base.mkdir(), cur.mkdir()
    baseline = _bench_payload(
        "engine", [{"graph": "g", "warm/direct x": 2.0, "batch/one-shot x": 1.5}]
    )
    collapsed = _bench_payload(
        "engine", [{"graph": "g", "warm/direct x": 0.4, "batch/one-shot x": 1.5}]
    )
    (base / "BENCH_engine.json").write_text(json.dumps(baseline))
    (cur / "BENCH_engine.json").write_text(json.dumps(collapsed))
    assert bench_main(["check", "--baseline", str(base), "--current", str(cur)]) == 1
    assert "FAIL" in capsys.readouterr().out

    # A failing semantic gate fails the check even with healthy ratios.
    bad_gate = _bench_payload(
        "engine", [{"graph": "g", "warm/direct x": 2.0, "batch/one-shot x": 1.5}],
        gates=[("routed == direct", False)],
    )
    (cur / "BENCH_engine.json").write_text(json.dumps(bad_gate))
    ok, lines = check_against_baselines(base, cur)
    assert not ok and any("semantic gate" in ln for ln in lines)

    # A baseline whose current file vanished is a failure too.
    (cur / "BENCH_engine.json").unlink()
    ok, lines = check_against_baselines(base, cur)
    assert not ok and any("not produced" in ln for ln in lines)


def test_regression_check_bad_args(tmp_path):
    import pytest
    from repro.bench.regression import check_against_baselines

    ok, lines = check_against_baselines(tmp_path, tmp_path)  # no baselines
    assert not ok
    with pytest.raises(ValueError):
        check_against_baselines(tmp_path, tmp_path, tolerance=1.5)


def test_committed_baselines_are_current_schema():
    """The baselines shipped in-repo parse and carry comparable ratios."""
    import json
    from pathlib import Path
    from repro.bench.regression import EXPERIMENT_RATIOS, _numeric, _row_key

    root = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
    files = sorted(root.glob("BENCH_*.json"))
    assert len(files) >= 4  # kernels, store, engine, service
    for path in files:
        payload = json.loads(path.read_text())
        spec = EXPERIMENT_RATIOS[payload["experiment"]]
        comparable = [
            row for row in payload["rows"]
            if any(_numeric(row.get(f)) is not None for f in spec["ratios"])
        ]
        assert comparable, f"{path.name} has no comparable ratio rows"
        keys = [_row_key(r, spec["key"]) for r in comparable]
        assert len(keys) == len(set(keys)), f"{path.name} has ambiguous row keys"
