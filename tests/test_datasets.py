"""Tests for the dataset catalog and workload generators."""

import pytest

from repro.datasets.catalog import CATALOG, load, pattern_suite, reachability_suite
from repro.datasets.evolution import densification_sequence, grow_preferential
from repro.datasets.patterns import label_frequencies, random_pattern
from repro.datasets.updates import (
    apply_updates,
    deletion_batch,
    insertion_batch,
    mixed_batch,
)
from repro.graph.generators import gnm_random_graph
from repro.graph.traversal import is_acyclic


def test_catalog_contents():
    assert len(CATALOG) == 12
    assert len(reachability_suite()) == 10  # Table 1 rows
    assert len(pattern_suite()) == 5  # Table 2 rows
    for spec in reachability_suite():
        assert spec.paper_table1 is not None
    for spec in pattern_suite():
        assert spec.paper_table2 is not None


def test_load_is_deterministic():
    a = load("p2p", seed=3, scale=0.3)
    b = load("p2p", seed=3, scale=0.3)
    assert a.structure_equal(b)
    c = load("p2p", seed=4, scale=0.3)
    assert not a.structure_equal(c)


def test_load_scale_and_unknown():
    small = load("wikiVote", seed=1, scale=0.2)
    big = load("wikiVote", seed=1, scale=0.5)
    assert small.order() < big.order()
    with pytest.raises(ValueError):
        load("no-such-dataset")


def test_citation_family_is_acyclic():
    for name in ("citHepTh", "citation"):
        assert is_acyclic(load(name, seed=2, scale=0.2))


def test_labeled_datasets_have_labels():
    for spec in pattern_suite():
        g = spec.build(seed=1, scale=0.2)
        if spec.labels > 1:
            assert len(g.label_set()) > 1


def test_insertion_batch_properties():
    g = gnm_random_graph(30, 60, seed=1)
    batch = insertion_batch(g, 20, seed=2)
    assert len(batch) == 20
    assert all(op == "+" for op, _, _ in batch)
    # No duplicates, no existing edges.
    pairs = [(u, v) for _, u, v in batch]
    assert len(set(pairs)) == len(pairs)
    assert all(not g.has_edge(u, v) for u, v in pairs)
    assert g.size() == 60  # input untouched


def test_deletion_batch_properties():
    g = gnm_random_graph(30, 60, seed=3)
    batch = deletion_batch(g, 15, seed=4)
    assert len(batch) == 15
    assert all(op == "-" and g.has_edge(u, v) for op, u, v in batch)


def test_mixed_batch_and_apply():
    g = gnm_random_graph(30, 60, seed=5)
    batch = mixed_batch(g, 20, insert_ratio=0.5, seed=6)
    updated = apply_updates(g, batch)
    assert g.size() == 60
    inserts = sum(1 for op, _, _ in batch if op == "+")
    deletes = len(batch) - inserts
    assert updated.size() == 60 + inserts - deletes


def test_densification_sequence_grows_superlinearly():
    snaps = list(densification_sequence(100, alpha=1.2, beta=1.3, steps=4, seed=7))
    assert len(snaps) == 4
    for a, b in zip(snaps, snaps[1:]):
        assert b.order() > a.order()
        assert b.size() > a.size()
    # Densification: average degree increases.
    assert snaps[-1].size() / snaps[-1].order() > snaps[0].size() / snaps[0].order()


def test_grow_preferential_in_place():
    g = gnm_random_graph(20, 30, seed=8)
    grow_preferential(g, new_nodes=10, target_edges=80)
    assert g.order() == 30
    assert g.size() >= 80


def test_random_pattern_uses_graph_alphabet():
    g = gnm_random_graph(30, 90, num_labels=4, seed=9)
    freq = label_frequencies(g)
    assert sum(freq.values()) == 30
    q = random_pattern(g, 4, 5, max_bound=3, star_prob=0.5, seed=10)
    assert set(q.nodes.values()) <= set(freq)
    assert q.order() == 4 and q.size() >= 3
