"""Unit tests for the fault-injection framework and the hardened store.

Covers the :mod:`repro.faults` primitives themselves (plan determinism,
windowing, the deadline helper, the circuit breaker) plus the store-layer
robustness satellites: kill-a-writer-mid-write atomicity, stale-lock
reclamation tied to pid liveness, and bit-flip fuzzing over the snapshot
format's header / label-table / varint regions.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.faults.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.faults.deadline import DeadlineExceeded, run_with_deadline
from repro.faults.plan import (
    KILL_EXIT_CODE,
    FaultPlan,
    FaultRule,
    InjectedFault,
    InjectedIOError,
    current_plan,
    fault_data,
    fault_point,
    install_plan,
    uninstall_plan,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import attach_equivalent_leaves, gnm_random_graph
from repro.store.catalog import CatalogLockError, SnapshotCatalog, _DirectoryLock
from repro.store.format import (
    HEADER_SIZE,
    SnapshotError,
    dump_bytes,
    load_snapshot,
)


def _graph(seed=3, n=30, m=70):
    g = gnm_random_graph(n, m, num_labels=4, seed=seed)
    attach_equivalent_leaves(g, [4, 3], parents_per_group=2, seed=seed + 1)
    return g


# ----------------------------------------------------------------------
# FaultPlan / fault_point / fault_data
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_points_are_noops_without_a_plan(self):
        assert current_plan() is None
        fault_point("anything.at.all")  # must not raise
        assert fault_data("anything.bytes", b"payload") == b"payload"

    def test_installed_context_manager_restores_previous(self):
        outer = FaultPlan([], seed=1)
        inner = FaultPlan([], seed=2)
        install_plan(outer)
        try:
            assert current_plan() is outer
            with inner.installed():
                assert current_plan() is inner
            assert current_plan() is outer
        finally:
            uninstall_plan()
        assert current_plan() is None

    def test_windowing_after_and_times(self):
        plan = FaultPlan(
            [FaultRule(point="p.x", kind="error", after=2, times=3)], seed=0
        )
        outcomes = []
        with plan.installed():
            for _ in range(8):
                try:
                    fault_point("p.x")
                    outcomes.append(False)
                except InjectedFault:
                    outcomes.append(True)
        # hits 0-1 pass, hits 2-4 fire, hits 5+ pass again.
        assert outcomes == [False, False, True, True, True, False, False, False]
        assert plan.fired() == 3

    def test_unbounded_times_none(self):
        plan = FaultPlan([FaultRule(point="p.*", kind="io_error", times=None)])
        with plan.installed():
            for _ in range(5):
                with pytest.raises(InjectedIOError):
                    fault_point("p.anything")
        assert plan.fired("io_error") == 5

    def test_io_error_is_an_oserror(self):
        plan = FaultPlan([FaultRule(point="p", kind="io_error")])
        with plan.installed():
            with pytest.raises(OSError):
                fault_point("p")

    def test_probability_coin_is_deterministic(self):
        def firing_pattern():
            plan = FaultPlan(
                [FaultRule(point="p", kind="error", probability=0.5, times=None)],
                seed=42,
            )
            fired = []
            with plan.installed():
                for _ in range(64):
                    try:
                        fault_point("p")
                        fired.append(False)
                    except InjectedFault:
                        fired.append(True)
            return fired

        first, second = firing_pattern(), firing_pattern()
        assert first == second
        assert any(first) and not all(first)  # the coin actually varies

    def test_corrupt_fires_only_at_data_points(self):
        plan = FaultPlan(
            [FaultRule(point="p", kind="corrupt", times=None, flips=2)]
        )
        payload = bytes(range(64))
        with plan.installed():
            fault_point("p")  # control point: corrupt rule must not fire
            assert plan.fired() == 0
            mangled = fault_data("p", payload)
        assert mangled != payload
        assert len(mangled) == len(payload)
        assert plan.fired("corrupt") == 1

    def test_control_kinds_never_fire_at_data_points(self):
        plan = FaultPlan([FaultRule(point="p", kind="io_error", times=None)])
        with plan.installed():
            assert fault_data("p", b"abc") == b"abc"
        assert plan.fired() == 0

    def test_delay_sleeps(self):
        plan = FaultPlan(
            [FaultRule(point="p", kind="delay", delay_s=0.05)]
        )
        with plan.installed():
            start = time.perf_counter()
            fault_point("p")
            assert time.perf_counter() - start >= 0.04

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule(point="p", kind="nonsense")
        with pytest.raises(ValueError):
            FaultRule(point="p", kind="error", times=0)
        with pytest.raises(ValueError):
            FaultRule(point="p", kind="error", after=-1)
        with pytest.raises(ValueError):
            FaultRule(point="p", kind="error", probability=0.0)

    def test_report_shape(self):
        plan = FaultPlan([FaultRule(point="a.*", kind="error")], seed=9)
        with plan.installed():
            with pytest.raises(InjectedFault):
                fault_point("a.b")
            fault_point("other")
        report = plan.report()
        assert report["seed"] == 9
        assert report["total_fired"] == 1
        assert report["point_hits"] == {"a.b": 1, "other": 1}
        assert report["rules"][0]["fired"] == 1
        assert report["events"][0]["point"] == "a.b"


# ----------------------------------------------------------------------
# run_with_deadline
# ----------------------------------------------------------------------
class TestDeadline:
    def test_none_runs_inline(self):
        assert run_with_deadline(lambda: 41 + 1, None) == 42

    def test_fast_callable_returns(self):
        assert run_with_deadline(lambda: "ok", 5.0, label="fast") == "ok"

    def test_slow_callable_raises_deadline_exceeded(self):
        with pytest.raises(DeadlineExceeded) as excinfo:
            run_with_deadline(lambda: time.sleep(0.5), 0.05, label="slowpoke")
        assert excinfo.value.label == "slowpoke"
        assert excinfo.value.timeout == 0.05
        assert isinstance(excinfo.value, TimeoutError)

    def test_underlying_exception_is_relayed(self):
        def boom():
            raise KeyError("inner")

        with pytest.raises(KeyError):
            run_with_deadline(boom, 5.0)


# ----------------------------------------------------------------------
# CircuitBreaker (fake clock: no sleeping)
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_state_machine(self):
        now = [0.0]
        b = CircuitBreaker(threshold=2, cooldown_s=10.0, clock=lambda: now[0])
        assert b.state("k") == CLOSED and b.allow("k")
        b.record_failure("k")
        assert b.state("k") == CLOSED  # one short of the threshold
        b.record_failure("k")
        assert b.state("k") == OPEN
        assert not b.allow("k")  # cooldown not elapsed
        now[0] = 11.0
        assert b.allow("k")  # this caller is the half-open probe
        assert b.state("k") == HALF_OPEN
        assert not b.allow("k")  # everyone else keeps degrading
        b.record_success("k")
        assert b.state("k") == CLOSED and b.allow("k")

    def test_failed_probe_reopens_for_a_fresh_cooldown(self):
        now = [0.0]
        b = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=lambda: now[0])
        b.record_failure("k")
        assert b.state("k") == OPEN
        now[0] = 6.0
        assert b.allow("k")
        b.record_failure("k")  # probe failed
        assert b.state("k") == OPEN
        now[0] = 10.0  # 4s into the *new* cooldown
        assert not b.allow("k")
        now[0] = 11.1
        assert b.allow("k")

    def test_success_resets_the_consecutive_count(self):
        b = CircuitBreaker(threshold=3, cooldown_s=1.0)
        b.record_failure("k")
        b.record_failure("k")
        b.record_success("k")
        b.record_failure("k")
        b.record_failure("k")
        assert b.state("k") == CLOSED

    def test_keys_are_independent(self):
        b = CircuitBreaker(threshold=1, cooldown_s=100.0)
        b.record_failure("bad")
        assert b.state("bad") == OPEN
        assert b.state("good") == CLOSED and b.allow("good")
        snap = b.snapshot()
        assert snap["bad"]["trips"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0)


# ----------------------------------------------------------------------
# Satellite 1 — a writer killed mid-write leaves no corrupt visible file
# ----------------------------------------------------------------------
_KILL_WRITER_SCRIPT = """
import sys
from repro.faults.plan import FaultPlan, FaultRule, install_plan
from repro.graph.csr import CSRGraph
from repro.graph.generators import attach_equivalent_leaves, gnm_random_graph
from repro.store.catalog import SnapshotCatalog
from repro.store.format import save_snapshot

point, root = sys.argv[1], sys.argv[2]
g = gnm_random_graph(30, 70, num_labels=4, seed=3)
attach_equivalent_leaves(g, [4, 3], parents_per_group=2, seed=4)
csr = CSRGraph.from_digraph(g)
install_plan(FaultPlan([FaultRule(point=point, kind="kill", times=None)]))
if point.startswith("catalog"):
    SnapshotCatalog(root).warm(csr)        # dies inside the variant write
else:
    save_snapshot(csr, root + "/direct.rgs")  # dies inside the snapshot write
print("UNREACHABLE")
"""


class TestKillWriterMidWrite:
    def _run_killed_writer(self, tmp_path, point):
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", _KILL_WRITER_SCRIPT, point, str(tmp_path)],
            capture_output=True, text=True, env=env, cwd=Path(__file__).parent.parent,
        )
        assert proc.returncode == KILL_EXIT_CODE, proc.stderr
        assert "UNREACHABLE" not in proc.stdout

    def test_snapshot_killed_before_rename_leaves_no_file(self, tmp_path):
        # The kill fires at store.write.replace: bytes are on disk in the
        # temp file, but the visible name must not exist at all — partial
        # writes never pass an exists() check.
        self._run_killed_writer(tmp_path, "store.write.replace")
        assert not (tmp_path / "direct.rgs").exists()

    def test_variant_writer_killed_mid_write_leaves_loadable_catalog(self, tmp_path):
        self._run_killed_writer(tmp_path, "store.write.replace")
        # The catalog the dead writer left behind: whatever files *are*
        # visible must all load cleanly; the killed variant is simply
        # recomputed (cold miss) by the next session.
        catalog = SnapshotCatalog(tmp_path)
        for digest in catalog.digests():
            csr = catalog.base(digest)
            comp = catalog.reachability(digest)  # recompute-or-rehydrate
            assert comp.canonical_form()  # a real artifact either way
            assert csr.digest() == digest
        assert catalog.quarantined() == []

    def test_fresh_session_survives_orphaned_tmp_files(self, tmp_path):
        self._run_killed_writer(tmp_path, "store.write.replace")
        g = _graph()
        csr = CSRGraph.from_digraph(g)
        catalog = SnapshotCatalog(tmp_path)  # sweeps stale temps on open
        digest = catalog.warm(csr)
        assert catalog.base(digest).digest() == digest


# ----------------------------------------------------------------------
# Satellite 2 — stale-lock reclamation tied to pid liveness
# ----------------------------------------------------------------------
class TestStaleLockReclamation:
    def _plant_lock(self, tmp_path, pid, age_s=120.0):
        lock_path = tmp_path / ".lock"
        lock_path.write_text(
            f"pid={pid} owner=1 acquired={time.time() - age_s:.3f}\n"
        )
        old = time.time() - age_s
        os.utime(lock_path, (old, old))
        return lock_path

    def test_dead_owner_lock_is_reclaimed(self, tmp_path):
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        self._plant_lock(tmp_path, child.pid)
        lock = _DirectoryLock(tmp_path / ".lock", timeout=2.0, stale_after=1.0)
        with lock:  # breaks the stale file, acquires
            assert (tmp_path / ".lock").exists()
        assert not (tmp_path / ".lock").exists()

    def test_live_owner_with_stale_heartbeat_is_honoured(self, tmp_path):
        # A stale mtime alone is not proof of death: the owner's heartbeat
        # thread can die while its critical section lives on.  Our own pid
        # is definitionally alive, so the lock must NOT be reclaimed.
        self._plant_lock(tmp_path, os.getpid())
        lock = _DirectoryLock(tmp_path / ".lock", timeout=0.3, stale_after=1.0)
        with pytest.raises(CatalogLockError):
            with lock:
                pass
        assert (tmp_path / ".lock").exists()  # untouched

    def test_unreadable_pid_falls_back_to_age(self, tmp_path):
        lock_path = tmp_path / ".lock"
        lock_path.write_text("gibberish with no token\n")
        old = time.time() - 120.0
        os.utime(lock_path, (old, old))
        lock = _DirectoryLock(lock_path, timeout=2.0, stale_after=1.0)
        with lock:
            pass
        assert not lock_path.exists()

    def test_fresh_lock_is_never_broken(self, tmp_path):
        self._plant_lock(tmp_path, 999999, age_s=0.0)  # just touched
        lock = _DirectoryLock(tmp_path / ".lock", timeout=0.3, stale_after=60.0)
        with pytest.raises(CatalogLockError):
            with lock:
                pass


# ----------------------------------------------------------------------
# Satellite 3 — bit-flip fuzzing over the snapshot format
# ----------------------------------------------------------------------
class TestBitFlipFuzzing:
    @pytest.fixture(scope="class")
    def snapshot_bytes(self):
        return dump_bytes(CSRGraph.from_digraph(_graph()))

    def _flip_positions(self, data):
        # Deterministic sample across the three format regions: the fixed
        # header, the early body (counts + label table + node ids), and
        # the varint adjacency tail.
        positions = list(range(HEADER_SIZE))  # every header byte
        body_len = len(data) - HEADER_SIZE
        early = [HEADER_SIZE + (k * 7) % max(1, body_len // 3)
                 for k in range(12)]
        tail_base = HEADER_SIZE + (2 * body_len) // 3
        tail = [tail_base + (k * 11) % max(1, len(data) - tail_base)
                for k in range(12)]
        return sorted(set(positions + early + tail))

    def test_every_flip_raises_a_typed_snapshot_error(self, tmp_path, snapshot_bytes):
        path = tmp_path / "fuzz.rgs"
        for pos in self._flip_positions(snapshot_bytes):
            for mask in (0x01, 0x80):
                mangled = bytearray(snapshot_bytes)
                mangled[pos] ^= mask
                path.write_bytes(bytes(mangled))
                # The contract: *always* the typed error, never IndexError,
                # struct.error, UnicodeDecodeError or a silently-wrong graph.
                with pytest.raises(SnapshotError):
                    load_snapshot(path)

    def test_truncations_raise_typed_errors(self, tmp_path, snapshot_bytes):
        path = tmp_path / "trunc.rgs"
        for cut in (0, 3, HEADER_SIZE - 1, HEADER_SIZE,
                    HEADER_SIZE + 5, len(snapshot_bytes) - 1):
            path.write_bytes(snapshot_bytes[:cut])
            with pytest.raises(SnapshotError):
                load_snapshot(path)

    def test_intact_snapshot_still_loads(self, tmp_path, snapshot_bytes):
        path = tmp_path / "ok.rgs"
        path.write_bytes(snapshot_bytes)
        g = _graph()
        assert load_snapshot(path).digest() == CSRGraph.from_digraph(g).digest()

    def test_corrupt_variant_quarantined_exactly_once(self, tmp_path):
        catalog = SnapshotCatalog(tmp_path)
        csr = CSRGraph.from_digraph(_graph())
        digest = catalog.put(csr)
        clean = catalog.reachability(digest).canonical_form()
        variant = tmp_path / digest / "variants" / "reachability.rpv"
        data = bytearray(variant.read_bytes())
        data[HEADER_SIZE + 9] ^= 0xFF
        variant.write_bytes(bytes(data))

        # First read: corruption detected, file quarantined, artifact
        # recomputed from the base — byte-identical to the clean run.
        assert catalog.reachability(digest).canonical_form() == clean
        assert len(catalog.quarantined()) == 1
        # The rebuild rewrote the variant; the next read is a warm hit and
        # must not quarantine anything further.
        assert variant.exists()
        assert catalog.reachability(digest).canonical_form() == clean
        assert len(catalog.quarantined()) == 1

    def test_corrupt_base_quarantined_and_repairable(self, tmp_path):
        from repro.store.catalog import CatalogError

        catalog = SnapshotCatalog(tmp_path)
        csr = CSRGraph.from_digraph(_graph())
        digest = catalog.put(csr)
        base = tmp_path / digest / "base.rgs"
        data = bytearray(base.read_bytes())
        data[HEADER_SIZE + 4] ^= 0x42
        base.write_bytes(bytes(data))

        fresh = SnapshotCatalog(tmp_path)  # no memo cache
        with pytest.raises(CatalogError):
            fresh.base(digest)
        assert len(fresh.quarantined()) == 1
        assert digest not in fresh  # the entry stopped advertising itself
        # Re-putting the graph repairs the entry in place.
        assert fresh.put(csr) == digest
        fresh2 = SnapshotCatalog(tmp_path)
        assert fresh2.base(digest).digest() == digest
