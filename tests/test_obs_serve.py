"""Tests for :mod:`repro.obs.serve` and :mod:`repro.obs.profile` — the
live-ops HTTP surface and the span-attributed sampling profiler.

Four contracts:

* **Endpoints** — every route answers with the documented status codes
  and content types; ``/metrics`` renders scrape-parseable Prometheus
  text; ``/traces`` is JSONL; unknown paths 404; ``/profile`` validates
  its format and serialises concurrent windows (409).
* **Health semantics** — ``/health`` is 503 only when no service is
  mounted or the service is closed; a degraded epoch build or an open
  breaker circuit flips ``status`` to ``"degraded"`` while staying 200
  (still serving, exactly, on a slower route), and a fresh epoch
  recovers to ``"ok"``.
* **Lifecycle** — ``EngineService(obs_http=...)`` starts the server on
  construction and stops it on ``close()``; start/stop are idempotent.
* **Profiler** — samples from other threads are attributed to their
  ambient span-name stacks; the distinct-stack table is bounded with
  drops counted; invalid parameters are rejected.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.faults import FaultPlan, FaultRule
from repro.graph.generators import attach_equivalent_leaves, gnm_random_graph
from repro.obs.metrics import MetricsRegistry, installed
from repro.obs.profile import SamplingProfiler
from repro.obs.serve import METRICS_CONTENT_TYPE, ObsHTTPServer
from repro.obs.trace import Tracer, trace_span, tracing
from repro.queries.reachability import ReachabilityQuery
from repro.service import EngineService

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _small_graph(seed: int = 7):
    g = gnm_random_graph(40, 110, num_labels=4, seed=seed)
    attach_equivalent_leaves(g, [3, 2], parents_per_group=2, seed=seed + 1)
    return g


def _get(url: str, timeout: float = 10.0):
    """``(status, headers, body)`` — HTTP errors return, not raise."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read().decode("utf-8")


# ----------------------------------------------------------------------
# Endpoint routing and content types
# ----------------------------------------------------------------------

class TestEndpoints:
    def test_index_lists_endpoints(self):
        with ObsHTTPServer() as server:
            status, _, body = _get(server.url + "/")
            assert status == 200
            payload = json.loads(body)
            assert "/metrics" in payload["endpoints"]
            assert payload["service_mounted"] is False

    def test_metrics_scrape_parseable(self):
        with installed() as reg:
            reg.from_schema("router_queries_total")
            reg.inc_named("router_queries_total", ("reachability",), 3)
            with ObsHTTPServer() as server:
                status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == METRICS_CONTENT_TYPE
        for line in body.splitlines():
            assert line.startswith("#") or " " in line
        assert 'router_queries_total{class="reachability"} 3' in body

    def test_metrics_counts_its_own_requests(self):
        with installed() as reg:
            with ObsHTTPServer() as server:
                _get(server.url + "/metrics")
                _get(server.url + "/metrics")
                _, _, body = _get(server.url + "/metrics")
        counter = reg.get("obs_http_requests_total")
        assert counter.value(("/metrics", "200")) == 3
        assert 'obs_http_requests_total{endpoint="/metrics",status="200"}' \
            in body

    def test_metrics_503_without_registry(self):
        with ObsHTTPServer() as server:
            status, _, _ = _get(server.url + "/metrics")
            assert status == 503

    def test_traces_jsonl_and_slow_log(self):
        tracer = Tracer()
        tracer.record_span("fast", 0.0, 0.001)
        tracer.record_span("slowq", 10.0, 10.2)
        with ObsHTTPServer(tracer=tracer) as server:
            status, headers, body = _get(server.url + "/traces?limit=10")
            assert status == 200
            assert headers["Content-Type"] == "application/x-ndjson"
            spans = [json.loads(line) for line in body.splitlines()]
            assert {s["name"] for s in spans} == {"fast", "slowq"}

            status, _, body = _get(server.url + "/slow?threshold_ms=100")
            assert status == 200
            slow = json.loads(body)
            assert [e["name"] for e in slow["slow_queries"]] == ["slowq"]
            assert slow["threshold_ms"] == 100
            assert slow["dropped_spans"] == 0

    def test_traces_and_slow_503_without_tracer(self):
        with ObsHTTPServer() as server:
            assert _get(server.url + "/traces")[0] == 503
            assert _get(server.url + "/slow")[0] == 503

    def test_unknown_endpoint_404(self):
        with ObsHTTPServer() as server:
            status, _, body = _get(server.url + "/nope")
            assert status == 404
            assert "unknown endpoint" in json.loads(body)["error"]

    def test_profile_bad_format_400(self):
        with ObsHTTPServer() as server:
            status, _, _ = _get(server.url + "/profile?format=svg")
            assert status == 400

    def test_profile_folded_and_json(self):
        with ObsHTTPServer(profile_interval_s=0.002) as server:
            status, _, body = _get(
                server.url + "/profile?seconds=0.05&format=json"
            )
            assert status == 200
            payload = json.loads(body)
            assert {"interval_s", "ticks", "samples", "stacks"} <= set(payload)
            status, headers, _ = _get(
                server.url + "/profile?seconds=0.05&format=folded"
            )
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")

    def test_profile_single_flight_409(self):
        with ObsHTTPServer() as server:
            with server._profile_lock:
                status, _, body = _get(server.url + "/profile?seconds=0.01")
            assert status == 409
            assert "already running" in json.loads(body)["error"]


# ----------------------------------------------------------------------
# Health semantics: degraded flip under injected faults, recovery
# ----------------------------------------------------------------------

class _StubBreaker:
    def __init__(self, states):
        self._states = states

    def snapshot(self):
        return {
            key: {"state": state, "failures": 0, "trips": 0}
            for key, state in self._states.items()
        }


class _StubExecutor:
    def __init__(self, states):
        self.breaker = _StubBreaker(states)


class TestHealth:
    def test_no_service_503(self):
        server = ObsHTTPServer()
        status, payload = server.health_payload()
        assert status == 503 and payload["status"] == "no-service"
        assert server.ready_payload()[0] == 503
        assert server.epochs_payload()[0] == 503

    def test_ok_then_closed(self):
        service = EngineService(_small_graph(), backend="csr")
        server = ObsHTTPServer(service=service)
        try:
            status, payload = server.health_payload()
            assert status == 200 and payload["status"] == "ok"
            assert payload["version"] == 0 and payload["degraded"] == {}
            assert server.ready_payload() == (
                200, {"ready": True, "version": 0}
            )
        finally:
            service.close()
        status, payload = server.health_payload()
        assert status == 503 and payload["status"] == "closed"

    def test_degraded_flip_under_epoch_build_fault_and_recovery(self):
        graph = _small_graph()
        nodes = graph.node_list()
        service = EngineService(graph, backend="csr")
        server = ObsHTTPServer(service=service)
        query = ReachabilityQuery(nodes[0], nodes[-1])
        try:
            plan = FaultPlan(
                [FaultRule(point="epoch.build.*", kind="error", times=None)]
            )
            with plan.installed():
                # The build fails, the epoch marks the representation
                # degraded, and the query still answers via fallback.
                service.query(query)
            assert plan.fired("error") >= 1
            status, payload = server.health_payload()
            assert status == 200
            assert payload["status"] == "degraded"
            assert payload["degraded"]  # per-representation reasons
            # The next epoch (no fault installed) builds clean: recovered.
            service.refreeze()
            service.query(query)
            status, payload = server.health_payload()
            assert status == 200
            assert payload["status"] == "ok" and payload["degraded"] == {}
        finally:
            service.close()

    def test_open_breaker_flips_degraded(self):
        service = EngineService(_small_graph(), backend="csr")
        server = ObsHTTPServer(service=service)
        try:
            server.attach_executor(
                _StubExecutor({"pattern": "open", "reach": "closed"})
            )
            status, payload = server.health_payload()
            assert status == 200
            assert payload["status"] == "degraded"
            assert payload["breaker_open"] == ["pattern"]
            server.attach_executor(None)
            assert server.health_payload()[1]["status"] == "ok"
        finally:
            service.close()

    def test_epochs_payload_tracks_publications(self):
        service = EngineService(_small_graph(), backend="csr")
        server = ObsHTTPServer(service=service)
        try:
            status, payload = server.epochs_payload()
            assert status == 200 and payload["version"] == 0
            assert payload["published"] == 1
            service.refreeze()
            status, payload = server.epochs_payload()
            assert payload["version"] == 1 and payload["published"] == 2
            assert isinstance(payload["counters"], dict)
        finally:
            service.close()


# ----------------------------------------------------------------------
# Lifecycle: EngineService mounts and stops the server; idempotency
# ----------------------------------------------------------------------

class TestLifecycle:
    def test_engine_service_manages_server(self):
        server = ObsHTTPServer()
        service = EngineService(_small_graph(), backend="csr",
                                obs_http=server)
        assert server.running and server.service is service
        assert service.obs_http is server
        status, _, body = _get(server.url + "/health")
        assert status == 200 and json.loads(body)["status"] == "ok"
        service.close()
        assert not server.running
        service.close()  # close is idempotent; the server stays down
        assert not server.running

    def test_start_stop_idempotent(self):
        server = ObsHTTPServer()
        addr = server.start()
        assert server.start() == addr  # second start: same binding
        server.stop()
        server.stop()
        assert not server.running

    def test_health_catalog_lock_absent_without_catalog(self):
        service = EngineService(_small_graph(), backend="csr")
        server = ObsHTTPServer(service=service)
        try:
            _, payload = server.health_payload()
            assert payload["catalog_lock"] is None
        finally:
            service.close()


# ----------------------------------------------------------------------
# Sampling profiler: attribution, bounds, parameter validation
# ----------------------------------------------------------------------

class TestProfiler:
    def test_span_attributed_cross_thread_samples(self):
        tracer = Tracer()
        profiler = SamplingProfiler(0.002, tracer=tracer)
        stop = threading.Event()

        def hot():
            with trace_span("hotspot"):
                while not stop.is_set():
                    sum(i * i for i in range(400))

        with tracing(tracer):
            worker = threading.Thread(target=hot)
            worker.start()
            try:
                with profiler:
                    time.sleep(0.2)
            finally:
                stop.set()
                worker.join()
        assert profiler.sample_count > 0
        attributed = [
            stack for stack in profiler.samples()
            if stack and stack[0] == "span:hotspot"
        ]
        assert attributed, "no sample carried the ambient span prefix"
        # Folded export keeps the prefix so flamegraphs read in phases.
        assert any(line.startswith("span:hotspot;")
                   for line in profiler.to_folded().splitlines())

    def test_distinct_stack_table_is_bounded(self):
        profiler = SamplingProfiler(0.001, max_stacks=1)
        stop = threading.Event()

        def spin_a():
            while not stop.is_set():
                sum(i for i in range(300))

        def spin_b():
            while not stop.is_set():
                max(i for i in range(300))

        workers = [threading.Thread(target=f) for f in (spin_a, spin_b)]
        for w in workers:
            w.start()
        try:
            profiler.run_for(0.15)
        finally:
            stop.set()
            for w in workers:
                w.join()
        assert len(profiler.samples()) == 1
        assert profiler.dropped_stacks > 0
        assert profiler.to_dict()["dropped_stacks"] == profiler.dropped_stacks

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(0.0)
        with pytest.raises(ValueError):
            SamplingProfiler(0.01, max_stacks=0)
        with pytest.raises(ValueError):
            SamplingProfiler(0.01, max_depth=0)
        with pytest.raises(ValueError):
            ObsHTTPServer(max_profile_seconds=0)

    def test_start_stop_idempotent_and_clear(self):
        profiler = SamplingProfiler(0.002)
        profiler.start()
        profiler.start()  # no second ticker
        assert profiler.running
        profiler.stop()
        profiler.stop()
        assert not profiler.running
        profiler.clear()
        assert profiler.sample_count == 0 and profiler.samples() == {}


# ----------------------------------------------------------------------
# serve-obs CLI: end-to-end smoke over a real subprocess
# ----------------------------------------------------------------------

class TestServeObsCLI:
    def test_serve_obs_smoke(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve-obs",
             "--port", "0", "--nodes", "40", "--edges", "100",
             "--workers", "1", "--duration", "120",
             "--traffic-interval-s", "0.005"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True, cwd=str(tmp_path),
        )
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("obs endpoints on http://"), line
            url = line.split()[-1]
            # Give the self-traffic loop a beat so series are non-zero.
            time.sleep(1.0)
            status, headers, body = _get(url + "/metrics", timeout=30.0)
            assert status == 200
            assert headers["Content-Type"] == METRICS_CONTENT_TYPE
            assert "router_queries_total" in body
            status, _, body = _get(url + "/health", timeout=30.0)
            assert status == 200
            health = json.loads(body)
            assert health["status"] in ("ok", "degraded")
            assert isinstance(health["version"], int)
            status, _, body = _get(url + "/epochs", timeout=30.0)
            assert status == 200 and json.loads(body)["published"] >= 1
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait(timeout=30)
