"""Tests for the ``repro.store`` subsystem.

Covers the binary snapshot format (randomized round-trip properties,
corruption/truncation/version error paths, cross-hash-seed byte
stability), the delta-merge path (equivalence with rebuild-from-scratch),
and the catalog (warm hits byte-identical to cold in-memory runs on both
backends).
"""

from __future__ import annotations

import os
import struct
import subprocess
import sys
import time

import pytest

from repro.core.bisimulation import bisimulation_partition, bisimulation_partition_csr
from repro.core.pattern import (
    PatternCompression,
    compress_pattern,
    compress_pattern_csr,
    quotient_by_partition,
)
from repro.core.reachability import compress_reachability, compress_reachability_csr
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    attach_equivalent_leaves,
    gnm_random_graph,
    preferential_attachment_graph,
    random_dag,
)
from repro.store import SnapshotCatalog, load_snapshot, merge_deltas, save_snapshot
from repro.store.catalog import CatalogError
from repro.store.format import (
    FORMAT_VERSION,
    SnapshotError,
    SnapshotFormatError,
    SnapshotVersionError,
    UnsupportedNodeError,
    _HEADER,
    decode_int_sections,
    dump_bytes,
    encode_int_sections,
    graph_digest,
    load_bytes,
)

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _assert_same_frozen(a: CSRGraph, b: CSRGraph) -> None:
    """Buffer-for-buffer equality of two frozen graphs."""
    ba, bb = a.buffers(), b.buffers()
    assert ba.n == bb.n and ba.m == bb.m
    assert ba.indptr == bb.indptr and ba.indices == bb.indices
    assert ba.rindptr == bb.rindptr and ba.rindices == bb.rindices
    assert ba.label_codes == bb.label_codes
    assert ba.label_names == bb.label_names
    assert ba.nodes == bb.nodes


def _mixed_graph() -> DiGraph:
    """Every node-id type the format supports, plus labels and self-loops."""
    g = DiGraph()
    g.add_edge("a", "b")
    g.add_edge("b", -7)
    g.add_edge(-7, (1, "x"))
    g.add_edge((1, "x"), (2, (3, "nested")))
    g.add_edge("a", "a")  # self-loop
    g.add_node("isolated", "Läbel-ünïcode")
    g.set_label("a", "L1")
    g.set_label(-7, "L2")
    return g


def _random_graphs():
    for seed in range(6):
        g = gnm_random_graph(40 + seed * 13, 120 + seed * 31, num_labels=3, seed=seed)
        attach_equivalent_leaves(g, [4, 3, 3], parents_per_group=2, seed=seed + 50)
        yield g
    yield random_dag(60, 150, seed=9)
    yield preferential_attachment_graph(50, out_degree=3, reciprocity=0.5, seed=11)


# ----------------------------------------------------------------------
# Snapshot format round trips
# ----------------------------------------------------------------------
def test_snapshot_roundtrip_mixed_node_types(tmp_path):
    g = _mixed_graph()
    csr = CSRGraph.from_digraph(g)
    path = tmp_path / "mixed.rgs"
    save_snapshot(csr, path)
    back = load_snapshot(path)
    _assert_same_frozen(csr, back)
    assert back.to_digraph().structure_equal(g)
    assert back.digest() == csr.digest()


def test_snapshot_roundtrip_randomized_property():
    for g in _random_graphs():
        csr = CSRGraph.from_digraph(g)
        data = dump_bytes(csr)
        back = load_bytes(data)
        _assert_same_frozen(csr, back)
        # Re-serialising the loaded graph is byte-identical (canonical body).
        assert dump_bytes(back) == data


def test_compression_identical_from_snapshot():
    """Compression of a loaded snapshot == cold in-memory, both backends."""
    for g in _random_graphs():
        back = load_bytes(dump_bytes(CSRGraph.from_digraph(g)))
        rc_snap = compress_reachability_csr(back)
        assert (
            rc_snap.canonical_form()
            == compress_reachability(g, backend="csr").canonical_form()
            == compress_reachability(g, backend="dict").canonical_form()
        )
        pc_snap = compress_pattern_csr(back)
        assert (
            pc_snap.canonical_form()
            == compress_pattern(g).canonical_form()
            == quotient_by_partition(
                g, bisimulation_partition(g, backend="dict")
            ).canonical_form()
        )
        assert (
            bisimulation_partition_csr(back).as_frozen()
            == bisimulation_partition(g).as_frozen()
        )


def test_empty_and_tiny_graphs():
    empty = CSRGraph.from_digraph(DiGraph())
    back = load_bytes(dump_bytes(empty))
    assert back.n == 0 and back.m == 0
    single = DiGraph()
    single.add_node("only", "L")
    back = load_bytes(dump_bytes(CSRGraph.from_digraph(single)))
    assert back.n == 1 and back.m == 0 and back.label(0) == "L"


def test_snapshot_bytes_stable_across_hash_seeds():
    """The snapshot body (and digest) must not depend on PYTHONHASHSEED."""
    code = (
        "import sys\n"
        f"sys.path.insert(0, {SRC!r})\n"
        "from repro.graph.csr import CSRGraph\n"
        "from repro.graph.digraph import DiGraph\n"
        "from repro.graph.generators import attach_equivalent_leaves\n"
        "from repro.store.format import dump_bytes, graph_digest\n"
        "g = DiGraph()\n"
        "ring = [f'core{i}' for i in range(7)]\n"
        "for a, b in zip(ring, ring[1:] + ring[:1]):\n"
        "    g.add_edge(a, b)\n"
        "for i in range(5):\n"
        "    g.add_edge(ring[i], f'hub{i}')\n"
        "    g.set_label(f'hub{i}', f'L{i % 2}')\n"
        "attach_equivalent_leaves(g, [4, 3], parents_per_group=2, seed=13)\n"
        "csr = CSRGraph.from_digraph(g)\n"
        "print(dump_bytes(csr).hex())\n"
        "print(graph_digest(csr))\n"
    )
    outputs = []
    for seed in ("0", "12345"):
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=dict(os.environ, PYTHONHASHSEED=seed),
            check=True,
        )
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]


def test_digest_matches_format_digest():
    g = gnm_random_graph(30, 90, num_labels=2, seed=3)
    csr = CSRGraph.from_digraph(g)
    assert csr.digest() == graph_digest(csr)
    assert len(csr.digest()) == 64  # sha256 hex


def test_unsupported_node_types_rejected():
    g = DiGraph()
    g.add_edge(frozenset({1}), 2)
    with pytest.raises(UnsupportedNodeError):
        dump_bytes(CSRGraph.from_digraph(g))
    g2 = DiGraph()
    g2.add_edge(True, 2)  # bools shadow ints 0/1; refuse rather than alias
    with pytest.raises(UnsupportedNodeError):
        dump_bytes(CSRGraph.from_digraph(g2))


# ----------------------------------------------------------------------
# Error paths
# ----------------------------------------------------------------------
def _snapshot_bytes() -> bytes:
    g = gnm_random_graph(25, 60, num_labels=2, seed=4)
    return dump_bytes(CSRGraph.from_digraph(g))


def test_bad_magic_rejected():
    data = _snapshot_bytes()
    with pytest.raises(SnapshotFormatError, match="magic"):
        load_bytes(b"XXXX" + data[4:])


def test_version_mismatch_rejected():
    data = bytearray(_snapshot_bytes())
    struct.pack_into("<H", data, 4, FORMAT_VERSION + 1)
    with pytest.raises(SnapshotVersionError):
        load_bytes(bytes(data))


def test_unknown_feature_flags_rejected():
    """A future flags bit must fail cleanly, not misparse a body."""
    data = bytearray(_snapshot_bytes())
    flags = struct.unpack_from("<H", data, 6)[0]
    struct.pack_into("<H", data, 6, flags | 0x8000)
    with pytest.raises(SnapshotVersionError, match="feature flags"):
        load_bytes(bytes(data))


def test_truncation_detected_at_every_prefix():
    data = _snapshot_bytes()
    # Every strict prefix must fail loudly, never return a half graph.
    for cut in range(0, len(data), max(1, len(data) // 40)):
        with pytest.raises(SnapshotError):
            load_bytes(data[:cut])


def test_corruption_detected_by_checksum():
    data = _snapshot_bytes()
    body_start = _HEADER.size
    for offset in range(body_start, len(data), max(1, (len(data) - body_start) // 25)):
        corrupt = bytearray(data)
        corrupt[offset] ^= 0xFF
        with pytest.raises(SnapshotError):
            load_bytes(bytes(corrupt))


def test_trailing_garbage_rejected():
    with pytest.raises(SnapshotError):
        load_bytes(_snapshot_bytes() + b"extra")


def test_duplicate_node_ids_rejected_as_snapshot_error():
    """A CRC-valid body with duplicate node ids must stay inside the
    SnapshotError contract so the self-heal paths can catch it."""
    from repro.store.format import _frame, _write_node, _write_uvarint

    body = bytearray()
    _write_uvarint(body, 2)  # n
    _write_uvarint(body, 0)  # m
    _write_uvarint(body, 1)  # one label ...
    raw = "σ".encode("utf-8")
    _write_uvarint(body, len(raw))
    body += raw
    _write_uvarint(body, 0)  # ... carried by both nodes
    _write_uvarint(body, 0)
    _write_node(body, 7)  # duplicate id
    _write_node(body, 7)
    for _ in range(4):  # two empty adjacency rows, both directions
        _write_uvarint(body, 0)
    with pytest.raises(SnapshotFormatError, match="malformed snapshot body"):
        load_bytes(_frame(bytes(body)))


def test_deep_tuple_nesting_bounded_both_ways():
    """Nesting past MAX_NODE_DEPTH is refused on write; a crafted deep byte
    stream is refused on read with SnapshotFormatError, not RecursionError."""
    from repro.store.format import MAX_NODE_DEPTH, _frame, _write_uvarint

    node = (1,)
    for _ in range(MAX_NODE_DEPTH + 2):
        node = (node,)
    g = DiGraph()
    g.add_node(node)
    with pytest.raises(UnsupportedNodeError, match="nests tuples"):
        dump_bytes(CSRGraph.from_digraph(g))

    body = bytearray()
    _write_uvarint(body, 1)  # n
    _write_uvarint(body, 0)  # m
    _write_uvarint(body, 1)  # one label: σ
    raw = "σ".encode("utf-8")
    _write_uvarint(body, len(raw))
    body += raw
    _write_uvarint(body, 0)  # label code
    body += bytes([2, 1]) * 2000  # 2000 nested single-item tuples
    body += bytes([0, 0])  # innermost int 0
    for _ in range(2):  # two empty adjacency sections
        _write_uvarint(body, 0)
    with pytest.raises(SnapshotFormatError, match="nests tuples"):
        load_bytes(_frame(bytes(body)))


def test_stale_tmp_files_swept_on_open(tmp_path):
    from repro.store.format import TMP_MARKER, sweep_stale_tmp

    g = gnm_random_graph(10, 20, seed=3)
    catalog = SnapshotCatalog(tmp_path)
    digest = catalog.put(g)

    def make_orphan(path, age_hours):
        path.write_bytes(b"junk")
        old = path.stat().st_mtime - age_hours * 3600
        os.utime(path, (old, old))

    stale_root = tmp_path / f"x{TMP_MARKER}orphan"
    stale_deep = tmp_path / digest / "variants" / f"y{TMP_MARKER}orphan"
    fresh = tmp_path / f"z{TMP_MARKER}inflight"
    make_orphan(stale_root, age_hours=2)
    make_orphan(stale_deep, age_hours=2)
    fresh.write_bytes(b"another writer's in-flight temp")
    SnapshotCatalog(tmp_path)  # open sweeps recursively, age-gated
    assert not stale_root.exists() and not stale_deep.exists()
    assert fresh.exists()  # a live writer's temp is never touched
    # The flat helper is what the bench cache dir uses.
    make_orphan(stale_root, age_hours=2)
    sweep_stale_tmp(tmp_path)
    assert not stale_root.exists()


def test_surrogate_node_ids_kept_inside_snapshot_error_contract():
    g = DiGraph()
    g.add_node("bad-\udcff-surrogate", "L")
    with pytest.raises(UnsupportedNodeError, match="not encodable"):
        dump_bytes(CSRGraph.from_digraph(g))


def test_int_sections_roundtrip_and_errors():
    sections = {"a": [0, 1, 2, 300000], "empty": [], "b": [7]}
    data = encode_int_sections(sections)
    assert decode_int_sections(data) == sections
    with pytest.raises(SnapshotFormatError):
        decode_int_sections(data[:-1])
    with pytest.raises(SnapshotFormatError):
        decode_int_sections(b"RPGX" + data[4:])
    with pytest.raises(ValueError):
        encode_int_sections({"neg": [-1]})


# ----------------------------------------------------------------------
# Delta merge
# ----------------------------------------------------------------------
def test_merge_deltas_equivalent_to_rebuild_randomized():
    import random

    for seed in range(8):
        rng = random.Random(seed)
        g = gnm_random_graph(30, 80, num_labels=3, seed=seed)
        csr = CSRGraph.from_digraph(g)
        edges = g.edge_list()
        removed = rng.sample(edges, k=min(10, len(edges))) + [(998, 999)]
        added = [(rng.randrange(30), rng.randrange(30)) for _ in range(12)]
        added += [(5, f"new{seed}"), (f"new{seed}", f"other{seed}")]
        labels = {f"new{seed}": "FRESH"}

        reference = g.copy()
        for u, v in removed:
            reference.remove_edge(u, v)
        for u, v in added:
            reference.add_edge(u, v)
        for v, lab in labels.items():
            reference.set_label(v, lab)

        merged = merge_deltas(csr, added, removed, labels=labels)
        _assert_same_frozen(merged, CSRGraph.from_digraph(reference))


def test_merge_deltas_noop_is_identity():
    g = gnm_random_graph(20, 50, num_labels=2, seed=1)
    csr = CSRGraph.from_digraph(g)
    _assert_same_frozen(merge_deltas(csr), csr)
    # Removing an absent edge and re-adding an existing one: also identity.
    existing = next(iter(g.edges()))
    _assert_same_frozen(
        merge_deltas(csr, added_edges=[existing], removed_edges=[(777, 888)]), csr
    )


def test_merge_deltas_add_wins_over_remove():
    g = DiGraph.from_edges([(1, 2), (2, 3)])
    csr = CSRGraph.from_digraph(g)
    merged = merge_deltas(csr, added_edges=[(1, 2)], removed_edges=[(1, 2)])
    thawed = merged.to_digraph()
    assert thawed.has_edge(1, 2)


def test_merge_deltas_rejects_relabel_of_existing_node():
    g = DiGraph.from_edges([(1, 2)])
    g.set_label(1, "A")
    csr = CSRGraph.from_digraph(g)
    with pytest.raises(ValueError, match="relabel"):
        merge_deltas(csr, added_edges=[(2, 3)], labels={1: "X"})
    # Restating a node's current label is a no-op, not a relabel.
    merged = merge_deltas(csr, added_edges=[(2, 3)], labels={1: "A", 3: "C"})
    assert merged.label(merged.id_of(3)) == "C"


def test_inconsistent_reverse_section_rejected():
    """A CRC-valid file whose reverse section disagrees with the forward
    edges is refused (buggy-writer guard)."""
    from repro.graph.csr import CSRBuffers
    from repro.store.format import encode_body, _frame

    good = CSRGraph.from_digraph(DiGraph.from_edges([(0, 1), (1, 2)]))
    b = good.buffers()
    bad = CSRGraph.from_buffers(
        CSRBuffers(
            n=b.n, m=b.m,
            indptr=b.indptr, indices=b.indices,
            # claims preds 0 <- 1 and 1 <- 0; forward has in-degrees 0,1,1
            rindptr=[0, 1, 2, 2], rindices=[1, 0],
            label_codes=b.label_codes, label_names=b.label_names, nodes=b.nodes,
        )
    )
    with pytest.raises(SnapshotFormatError, match="reverse adjacency"):
        load_bytes(_frame(encode_body(bad)))


def test_merge_deltas_rejects_label_for_unknown_node():
    g = DiGraph.from_edges([(1, 2)])
    csr = CSRGraph.from_digraph(g)
    with pytest.raises(ValueError, match="neither exists"):
        merge_deltas(csr, added_edges=[(2, 3)], labels={"typo": "X"})


def test_merge_deltas_keeps_endpoints_of_removed_edges():
    g = DiGraph.from_edges([(1, 2)])
    csr = CSRGraph.from_digraph(g)
    merged = merge_deltas(csr, removed_edges=[(1, 2)])
    assert merged.n == 2 and merged.m == 0


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------
def test_catalog_cold_then_warm_byte_identical(tmp_path):
    g = gnm_random_graph(60, 200, num_labels=3, seed=6)
    attach_equivalent_leaves(g, [5, 4], parents_per_group=2, seed=8)
    catalog = SnapshotCatalog(tmp_path / "cat")
    digest = catalog.put(g)
    assert digest in catalog and catalog.digests() == [digest]
    meta = catalog.meta(digest)
    assert meta["nodes"] == g.order() and meta["edges"] == g.size()

    rc_cold = catalog.reachability(digest)
    pc_cold = catalog.bisimulation(digest)
    assert catalog.has_variant(digest, "reachability")
    assert catalog.has_variant(digest, "bisimulation")

    # A fresh handle (new session): zero recomputation, identical bytes.
    warm = SnapshotCatalog(tmp_path / "cat")
    rc_warm = warm.reachability(digest)
    pc_warm = warm.bisimulation(digest)
    assert rc_warm.canonical_form() == rc_cold.canonical_form()
    assert pc_warm.canonical_form() == pc_cold.canonical_form()
    assert (
        rc_warm.canonical_form()
        == compress_reachability(g, backend="csr").canonical_form()
        == compress_reachability(g, backend="dict").canonical_form()
    )
    assert (
        pc_warm.canonical_form()
        == compress_pattern(g).canonical_form()
        == quotient_by_partition(
            g, bisimulation_partition(g, backend="dict")
        ).canonical_form()
    )
    assert isinstance(pc_warm, PatternCompression)


def test_catalog_rehydrated_artifacts_answer_queries(tmp_path):
    g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")])
    catalog = SnapshotCatalog(tmp_path)
    digest = catalog.warm(g)
    rc = SnapshotCatalog(tmp_path).reachability(digest)
    assert rc.query("a", "d") is True
    assert rc.query("d", "a") is False
    assert rc.query("a", "c") is True  # same SCC, resolved by the index


def test_catalog_put_is_idempotent_and_content_addressed(tmp_path):
    g1 = gnm_random_graph(25, 60, seed=2)
    catalog = SnapshotCatalog(tmp_path)
    d1 = catalog.put(g1)
    assert catalog.put(g1.copy()) == d1  # same content, same digest
    g2 = gnm_random_graph(25, 60, seed=3)
    d2 = catalog.put(g2)
    assert d1 != d2
    assert sorted(catalog.digests()) == sorted([d1, d2])


def test_catalog_corrupt_variant_self_heals(tmp_path):
    g = gnm_random_graph(25, 70, num_labels=2, seed=14)
    catalog = SnapshotCatalog(tmp_path)
    digest = catalog.warm(g)
    expected = catalog.reachability(digest).canonical_form()
    variant = tmp_path / digest / "variants" / "reachability.rpv"
    variant.write_bytes(b"RPGVgarbage")
    healed = SnapshotCatalog(tmp_path)
    assert healed.reachability(digest).canonical_form() == expected  # recomputed
    # ... and the rewritten file serves the next warm hit.
    again = SnapshotCatalog(tmp_path)
    assert again.reachability(digest).canonical_form() == expected


@pytest.mark.parametrize("other_size", [(10, 25), (30, 80)])
def test_catalog_wrong_graph_variant_self_heals(tmp_path, other_size):
    """A CRC-valid variant belonging to a *different* base graph — whether
    of a different or the *same* node count — is recomputed, never
    rehydrated into a wrong artifact (the embedded base-digest guard)."""
    n, m = other_size
    other = gnm_random_graph(n, m, num_labels=2, seed=1)
    target_graph = gnm_random_graph(30, 80, num_labels=2, seed=2)
    catalog = SnapshotCatalog(tmp_path)
    d_other = catalog.warm(other)
    d_target = catalog.put(target_graph)
    expected = compress_reachability(target_graph, backend="csr").canonical_form()
    for kind in ("reachability", "bisimulation"):
        wrong = tmp_path / d_other / "variants" / f"{kind}.rpv"
        target = tmp_path / d_target / "variants" / f"{kind}.rpv"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(wrong.read_bytes())
    healed = SnapshotCatalog(tmp_path)
    assert healed.reachability(d_target).canonical_form() == expected
    assert (
        healed.bisimulation(d_target).canonical_form()
        == compress_pattern(target_graph).canonical_form()
    )


def test_catalog_unknown_digest_raises(tmp_path):
    catalog = SnapshotCatalog(tmp_path)
    with pytest.raises(CatalogError):
        catalog.base("0" * 64)
    with pytest.raises(CatalogError):
        catalog.reachability("0" * 64)


def test_catalog_rejects_renamed_entry(tmp_path):
    """A valid snapshot filed under the wrong digest is refused, not served."""
    g = gnm_random_graph(18, 50, num_labels=2, seed=23)
    catalog = SnapshotCatalog(tmp_path)
    digest = catalog.put(g)
    wrong = "f" * 64
    (tmp_path / digest).rename(tmp_path / wrong)
    fresh = SnapshotCatalog(tmp_path)
    with pytest.raises(CatalogError, match="content digest"):
        fresh.base(wrong)
    # The file survives (it is real content, unlike a corrupt one).
    assert (tmp_path / wrong / "base.rgs").exists()


def test_catalog_readonly_degrades_to_compute_only(tmp_path, monkeypatch):
    """An unwritable catalog still serves cold misses (compute-only).

    Simulated via monkeypatch — a chmod-based version would be a no-op
    when the suite runs as root.
    """
    import repro.store.catalog as catalog_module

    g = gnm_random_graph(18, 50, num_labels=2, seed=24)
    catalog = SnapshotCatalog(tmp_path)
    digest = catalog.put(g)

    def deny(path, data):
        raise PermissionError(f"read-only catalog: {path}")

    monkeypatch.setattr(catalog_module, "atomic_write_bytes", deny)
    rc = SnapshotCatalog(tmp_path).reachability(digest)  # cold miss
    assert (
        rc.canonical_form()
        == compress_reachability(g, backend="csr").canonical_form()
    )
    variants = tmp_path / digest / "variants"
    assert not any(variants.iterdir())  # nothing was persisted


def test_catalog_never_deletes_newer_format_data(tmp_path):
    """An older reader refuses newer-format files but must not destroy or
    overwrite them (shared catalog across tool versions)."""
    g = gnm_random_graph(16, 45, num_labels=2, seed=25)
    catalog = SnapshotCatalog(tmp_path)
    digest = catalog.warm(g)

    # Newer-version base: refused, preserved.
    base = tmp_path / digest / "base.rgs"
    data = bytearray(base.read_bytes())
    struct.pack_into("<H", data, 4, FORMAT_VERSION + 1)
    base.write_bytes(bytes(data))
    fresh = SnapshotCatalog(tmp_path)
    with pytest.raises(CatalogError, match="newer format"):
        fresh.base(digest)
    assert base.read_bytes() == bytes(data)  # untouched

    # Newer-version variant: computed in memory, file left alone.
    base.write_bytes(_snapshot_roundtrip_bytes(g))
    variant = tmp_path / digest / "variants" / "reachability.rpv"
    vdata = bytearray(variant.read_bytes())
    struct.pack_into("<H", vdata, 4, FORMAT_VERSION + 1)
    variant.write_bytes(bytes(vdata))
    rc = SnapshotCatalog(tmp_path).reachability(digest)
    assert (
        rc.canonical_form()
        == compress_reachability(g, backend="csr").canonical_form()
    )
    assert variant.read_bytes() == bytes(vdata)  # not clobbered


def _snapshot_roundtrip_bytes(g):
    return dump_bytes(CSRGraph.from_digraph(g))


def test_catalog_corrupt_base_dropped_and_repairable_by_put(tmp_path):
    g = gnm_random_graph(20, 55, num_labels=2, seed=21)
    catalog = SnapshotCatalog(tmp_path)
    digest = catalog.put(g)
    base = tmp_path / digest / "base.rgs"
    base.write_bytes(base.read_bytes()[:30])  # truncate (partial copy)
    fresh = SnapshotCatalog(tmp_path)
    with pytest.raises(CatalogError, match="corrupt"):
        fresh.base(digest)
    assert digest not in fresh  # the broken entry stops advertising itself
    assert fresh.put(g) == digest  # ... so re-putting repairs it
    _assert_same_frozen(
        SnapshotCatalog(tmp_path).base(digest), CSRGraph.from_digraph(g)
    )


def test_from_arrays_rejects_inconsistent_block_counts():
    """The documented ValueError contract for malformed persisted arrays."""
    g = gnm_random_graph(15, 40, num_labels=2, seed=22)
    csr = CSRGraph.from_digraph(g)
    order = csr.node_order()
    rc_arrays = compress_reachability_csr(csr).to_arrays(order)
    rc_arrays["nclasses"][0] += 1  # memberless phantom hypernode
    with pytest.raises(ValueError):
        from repro.core.reachability import ReachabilityCompression
        ReachabilityCompression.from_arrays(order, rc_arrays)
    pc = compress_pattern_csr(csr)
    pc_arrays = pc.to_arrays(order)
    pc_arrays["nblocks"][0] += 1
    labels = [csr.label(i) for i in range(csr.n)]
    with pytest.raises(ValueError):
        PatternCompression.from_arrays(order, labels, pc_arrays)


def test_catalog_base_roundtrip(tmp_path):
    g = _mixed_graph()
    catalog = SnapshotCatalog(tmp_path)
    digest = catalog.put(g)
    fresh = SnapshotCatalog(tmp_path)
    _assert_same_frozen(fresh.base(digest), CSRGraph.from_digraph(g))


# ----------------------------------------------------------------------
# Bench harness snapshot cache
# ----------------------------------------------------------------------
def test_load_or_freeze_snapshot_cache(tmp_path, monkeypatch):
    from repro.bench.harness import SNAPSHOT_CACHE_ENV, load_or_freeze

    calls = []

    def build():
        calls.append(1)
        return gnm_random_graph(20, 60, num_labels=2, seed=5)

    # Disabled: builds every time, no files written, no freeze paid.
    monkeypatch.delenv(SNAPSHOT_CACHE_ENV, raising=False)
    g0, csr0 = load_or_freeze("cache-test", build)
    assert len(calls) == 1 and csr0 is None and not list(tmp_path.iterdir())

    # Enabled: first call builds and saves, second loads the snapshot.
    monkeypatch.setenv(SNAPSHOT_CACHE_ENV, str(tmp_path))
    g1, csr1 = load_or_freeze("cache-test", build)
    assert len(calls) == 2
    assert (tmp_path / "cache-test.rgs").exists()
    g2, csr2 = load_or_freeze("cache-test", build)
    assert len(calls) == 2  # not rebuilt
    _assert_same_frozen(csr1, csr2)
    assert g2.structure_equal(g1) and g2.node_list() == g1.node_list()
    # Thaw/re-freeze closes the loop: cached graphs freeze identically.
    _assert_same_frozen(CSRGraph.from_digraph(g2), CSRGraph.from_digraph(g0))

    # A corrupt cache entry self-heals instead of failing every bench run.
    (tmp_path / "cache-test.rgs").write_bytes(b"RPGSgarbage")
    g3, csr3 = load_or_freeze("cache-test", build)
    assert len(calls) == 3  # rebuilt
    _assert_same_frozen(csr3, csr1)
    g4, _ = load_or_freeze("cache-test", build)
    assert len(calls) == 3  # cache healed, loads again


# ----------------------------------------------------------------------
# Catalog retention: prune (LRU-by-mtime) and the writer lock
# ----------------------------------------------------------------------
def _fill_catalog(catalog, count, seed=0):
    digests = []
    for i in range(count):
        g = gnm_random_graph(25, 55, num_labels=2, seed=seed + i)
        digests.append(catalog.put(g))
    return digests


def test_prune_by_entries_evicts_lru(tmp_path):
    catalog = SnapshotCatalog(tmp_path)
    digests = _fill_catalog(catalog, 3)
    for i, digest in enumerate(digests):
        os.utime(tmp_path / digest / "base.rgs", (1000 + i, 1000 + i))
    # Accessing an entry refreshes its recency (base() touches the stamp).
    catalog.base(digests[0])
    evicted = catalog.prune(max_entries=2)
    assert evicted == [digests[1]]  # oldest *unaccessed* entry goes first
    assert digests[1] not in catalog
    assert digests[0] in catalog and digests[2] in catalog
    with pytest.raises(CatalogError):
        catalog.base(digests[1])
    # Survivors still rehydrate from disk through a fresh handle.
    fresh = SnapshotCatalog(tmp_path)
    assert fresh.base(digests[0]).digest() == digests[0]


def test_prune_by_bytes_and_validation(tmp_path):
    catalog = SnapshotCatalog(tmp_path)
    digests = _fill_catalog(catalog, 3, seed=10)
    for i, digest in enumerate(digests):
        os.utime(tmp_path / digest / "base.rgs", (2000 + i, 2000 + i))
    keep_budget = catalog._entry_bytes(digests[2]) + 1
    evicted = catalog.prune(max_bytes=keep_budget)
    assert evicted == digests[:2]  # two oldest evicted, newest kept
    assert catalog.digests() == [digests[2]] or catalog.digests() == sorted([digests[2]])
    assert catalog.prune(max_entries=5) == []  # already within bounds
    with pytest.raises(ValueError):
        catalog.prune()
    with pytest.raises(ValueError):
        catalog.prune(max_entries=-1)
    with pytest.raises(ValueError):
        catalog.prune(max_bytes=-1)
    # max_entries=0 empties the catalog.
    assert catalog.prune(max_entries=0) == [digests[2]]
    assert catalog.digests() == []


def test_prune_keeps_warm_variants_of_survivors(tmp_path):
    catalog = SnapshotCatalog(tmp_path)
    g_old = gnm_random_graph(25, 55, num_labels=2, seed=30)
    g_new = gnm_random_graph(25, 55, num_labels=2, seed=31)
    d_old, d_new = catalog.warm(g_old), catalog.warm(g_new)
    os.utime(tmp_path / d_old / "base.rgs", (1000, 1000))
    assert catalog.prune(max_entries=1) == [d_old]
    fresh = SnapshotCatalog(tmp_path)
    assert fresh.has_variant(d_new, "reachability")
    rc = fresh.reachability(d_new)
    assert rc.canonical_form() == compress_reachability(g_new).canonical_form()


def test_catalog_lock_contention_and_stale_reclaim(tmp_path):
    from repro.store.catalog import CatalogLockError

    fast = SnapshotCatalog(tmp_path, lock_timeout=0.15)
    other = SnapshotCatalog(tmp_path, lock_timeout=0.15)
    with fast.lock():
        with fast.lock():  # reentrant within one handle
            pass
        with pytest.raises(CatalogLockError):
            with other.lock():
                pass
    # Released: acquirable again.
    with other.lock():
        pass
    # A stale lock file (crashed writer) is broken, not waited on forever.
    lock_path = tmp_path / ".lock"
    lock_path.write_text("pid=0 acquired=0\n")
    os.utime(lock_path, (1000, 1000))
    stale_aware = SnapshotCatalog(tmp_path, lock_timeout=0.5, lock_stale_after=60.0)
    with stale_aware.lock():
        pass


def test_catalog_concurrent_writers_threads(tmp_path):
    """Shared-directory writers (put/warm/prune) interleave safely."""
    import threading

    g = gnm_random_graph(120, 420, num_labels=3, seed=40)
    errors = []

    def warm_worker():
        try:
            SnapshotCatalog(tmp_path).warm(g)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=warm_worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    catalog = SnapshotCatalog(tmp_path)
    digest = catalog.put(g)
    assert catalog.digests() == [digest]
    rc = catalog.reachability(digest)
    assert rc.canonical_form() == compress_reachability(g).canonical_form()


def test_catalog_lock_heartbeat_is_daemon_and_prevents_stale_break(tmp_path):
    """A long-held lock stays live via the daemon heartbeat thread.

    With ``stale_after`` shorter than the hold, a second handle must NOT
    reclaim the lock (the heartbeat keeps the mtime fresh) — it times out
    with ``CatalogLockError`` instead.
    """
    from repro.store.catalog import CatalogLockError

    holder = SnapshotCatalog(tmp_path, lock_timeout=5.0, lock_stale_after=0.4)
    waiter = SnapshotCatalog(tmp_path, lock_timeout=0.9, lock_stale_after=0.4)
    with holder.lock() as lock:
        assert lock._hb_thread is not None
        assert lock._hb_thread.daemon is True  # must never pin the process
        time.sleep(0.6)  # well past stale_after without a manual refresh
        with pytest.raises(CatalogLockError):
            with waiter.lock():
                pass
    assert lock._hb_thread is None  # stopped on release
    with waiter.lock():  # and the lock is properly released
        pass


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs POSIX fork")
def test_catalog_lock_survives_fork(tmp_path):
    """A forked child never inherits, releases, or breaks the parent's hold.

    This is the executor-worker scenario: a catalog shared with forked
    workers.  The child must (1) see itself unheld, (2) fail to acquire
    while the parent holds, and (3) leave the parent's lock file intact
    even when it exits a ``with`` block entered before the fork.
    """
    from repro.store.catalog import CatalogLockError

    catalog = SnapshotCatalog(tmp_path, lock_timeout=0.3, lock_stale_after=30.0)
    lock_path = tmp_path / ".lock"
    with catalog.lock() as lock:
        parent_token = lock_path.read_text()
        pid = os.fork()
        if pid == 0:  # ---- child ----
            code = 1
            try:
                if lock._depth == 0 and lock._token == "":  # re-armed
                    try:
                        with catalog.lock():
                            pass
                        code = 2  # acquired while parent holds: broken
                    except CatalogLockError:
                        code = 0
                # Exiting the inherited with-block must be a no-op; emulate
                # what a child unwinding the parent's stack would run.
                lock.__exit__(None, None, None)
                if not lock_path.exists():
                    code = 3  # child deleted the parent's lock file
            finally:
                os._exit(code)
        # ---- parent ----
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        assert lock_path.read_text() == parent_token  # hold undisturbed
    assert not lock_path.exists()  # parent released normally


def test_catalog_memo_cache_is_shared_and_thread_safe(tmp_path):
    """Concurrent warm reads share one memoised CSRGraph instance."""
    import threading

    g = gnm_random_graph(60, 180, num_labels=3, seed=41)
    digest = SnapshotCatalog(tmp_path).put(g)
    catalog = SnapshotCatalog(tmp_path)  # cold handle: loads from disk
    seen = []
    barrier = threading.Barrier(4)

    def load():
        barrier.wait()
        seen.append(catalog.base(digest))

    threads = [threading.Thread(target=load) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert len(seen) == 4
    assert all(x is seen[0] for x in seen)  # one instance won the race
