"""Unit tests for the partition-refinement data structure."""

import pytest

from repro.graph.partition import Partition


def test_from_blocks_and_lookup():
    p = Partition.from_blocks([["a", "b"], ["c"]])
    assert p.block_count() == 2
    assert len(p) == 3
    assert p.same_block("a", "b") and not p.same_block("a", "c")
    assert "a" in p and "z" not in p


def test_discrete_and_by_key():
    p = Partition.discrete([1, 2, 3])
    assert p.block_count() == 3
    q = Partition.by_key([1, 2, 3, 4], key=lambda v: v % 2)
    assert q.block_count() == 2
    assert q.same_block(1, 3) and q.same_block(2, 4)


def test_add_block_rejects_duplicates_and_empty():
    p = Partition.from_blocks([["a"]])
    with pytest.raises(ValueError):
        p.add_block(["a"])
    with pytest.raises(ValueError):
        p.add_block([])


def test_split_keeps_old_id_for_remainder():
    p = Partition.from_blocks([["a", "b", "c"]])
    bid = p.block_of("a")
    kept, new = p.split_block(bid, ["c"])
    assert kept == bid and new is not None
    assert p.block_of("a") == bid and p.block_of("c") == new
    # Degenerate splits are no-ops.
    assert p.split_block(bid, [])[1] is None
    assert p.split_block(bid, ["a", "b"])[1] is None


def test_split_rejects_non_subset():
    p = Partition.from_blocks([["a"], ["b"]])
    with pytest.raises(ValueError):
        p.split_block(p.block_of("a"), ["b"])


def test_merge_blocks():
    p = Partition.from_blocks([["a"], ["b"], ["c"]])
    target = p.merge_blocks([p.block_of("a"), p.block_of("b")])
    assert p.block_of("a") == p.block_of("b") == target
    assert p.block_count() == 2


def test_remove_and_move_and_isolate():
    p = Partition.from_blocks([["a", "b"], ["c"]])
    bid = p.remove_node("a")
    assert "a" not in p and p.members(bid) == {"b"}
    p.move_node("c", bid)
    assert p.same_block("b", "c")
    assert p.block_count() == 1
    new = p.isolate("b")
    assert p.block_of("b") == new and p.block_count() == 2


def test_remove_last_member_deletes_block():
    p = Partition.from_blocks([["a"], ["b"]])
    p.remove_node("a")
    assert p.block_count() == 1


def test_refine_by_signature():
    p = Partition.from_blocks([[1, 2, 3, 4]])
    changed = p.refine_by(lambda v: v % 2)
    assert changed
    assert p.same_block(1, 3) and p.same_block(2, 4) and not p.same_block(1, 2)
    assert not p.refine_by(lambda v: v % 2)  # already stable


def test_as_frozen_is_canonical():
    p = Partition.from_blocks([["a", "b"], ["c"]])
    q = Partition.from_blocks([["c"], ["b", "a"]])
    assert p.as_frozen() == q.as_frozen()
