"""Concurrency suite for :mod:`repro.service`.

The contract under test is exactness under concurrency: every answer a
reader (or executor worker) receives must equal from-scratch evaluation on
the graph of the epoch that answered it — including queries in flight
while the writer publishes — on both backends, under any thread count and
any ``PYTHONHASHSEED``.  The RCU memory side is tested too: retired
epochs must free their derived state once readers drain, and never before.

``REPRO_STRESS_WORKERS`` (CI's thread-sanity matrix: 1, 4, 16) sizes the
stress reader/worker pools; the default exercises 4.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import threading

import pytest

from repro.engine import EpochRetired, GraphEngine
from repro.graph.digraph import DiGraph
from repro.graph.generators import attach_equivalent_leaves, gnm_random_graph
from repro.datasets.patterns import random_pattern
from repro.queries.reachability import ReachabilityQuery
from repro.service import EngineService, QueryExecutor, freeze_answer, run_stress
from repro.service.epoch_stress import build_schedule, direct_answer

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")

STRESS_WORKERS = int(os.environ.get("REPRO_STRESS_WORKERS", "4"))


def _mixed_graph(seed: int, n: int = 70, m: int = 210) -> DiGraph:
    g = gnm_random_graph(n, m, num_labels=4, seed=seed)
    attach_equivalent_leaves(g, [4, 3, 3], parents_per_group=2, seed=seed + 1)
    return g


def _workload(graph: DiGraph, seed: int, pairs: int = 20, patterns: int = 4):
    rng = random.Random(seed)
    nodes = graph.node_list()
    queries = [
        ReachabilityQuery(rng.choice(nodes), rng.choice(nodes))
        for _ in range(pairs)
    ]
    for i in range(patterns):
        queries.append(
            random_pattern(graph, 3, 3, max_bound=2, star_prob=0.25,
                           seed=seed + 31 + i)
        )
    return queries


# ----------------------------------------------------------------------
# Epoch lifecycle
# ----------------------------------------------------------------------
def test_epoch_pin_retire_free_cycle():
    g = _mixed_graph(1)
    service = EngineService(g)
    epoch = service.current
    with service.pin() as pinned:
        assert pinned is epoch
        assert epoch.pins == 1
        service.apply([("+", "zz1", "zz2")])  # publish while pinned
        assert epoch.retired and not epoch.freed  # reader still in
        assert pinned.artifact("reachability") is not None  # still serves
    assert epoch.freed  # last reader drained -> memory released
    assert service.draining() == []
    with pytest.raises(EpochRetired):
        epoch.acquire()
    with pytest.raises(EpochRetired):
        epoch.artifact("pattern")


def test_epoch_answers_are_frozen_in_time():
    g = _mixed_graph(2)
    service = EngineService(g.copy())
    q = _workload(g, seed=5)[0]
    with service.pin() as epoch:
        before = service._router.dispatch(q, epoch)
        # Writer publishes; the pinned epoch must keep answering the old graph.
        service.apply([("+", q.source, q.target)])
        after_on_old = service._router.dispatch(q, epoch)
        assert freeze_answer(before) == freeze_answer(after_on_old)
    assert service.query(q) is True  # new epoch sees the inserted edge


def test_epoch_retire_without_readers_frees_immediately():
    g = _mixed_graph(3)
    service = EngineService(g)
    first = service.current
    first.artifact("pattern")
    assert service.apply([("+", "a", "b")]).applied == 1
    assert first.freed


def test_service_close_and_errors():
    g = _mixed_graph(4)
    service = EngineService(g)
    service.close()
    with pytest.raises(RuntimeError):
        service.query(ReachabilityQuery(1, 2))
    with pytest.raises(RuntimeError):
        service.apply([("+", 1, 2)])
    service.close()  # idempotent


def test_unbalanced_release_raises():
    g = _mixed_graph(5)
    epoch = GraphEngine(g).epoch()
    epoch.acquire()
    epoch.release()
    with pytest.raises(RuntimeError):
        epoch.release()


# ----------------------------------------------------------------------
# Serial identity: service == engine == direct
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["csr", "dict"])
def test_service_answers_match_engine_and_direct(backend):
    g = _mixed_graph(6)
    workload = _workload(g, seed=11)
    service = EngineService(g.copy(), backend=backend)
    engine = GraphEngine(g.copy(), backend=backend)
    for q in workload:
        a = freeze_answer(service.query(q))
        assert a == freeze_answer(engine.query(q))
        assert a == freeze_answer(direct_answer(g, q))
    batch = [freeze_answer(a) for a in service.query_batch(workload)]
    singles = [freeze_answer(service.query(q)) for q in workload]
    assert batch == singles


def test_versioned_queries_follow_publications():
    g = _mixed_graph(7)
    service = EngineService(g.copy(), journal=True)
    q = ReachabilityQuery(g.node_list()[0], g.node_list()[1])
    v0, _ = service.query_versioned(q)
    service.apply([("+", "x1", "x2")])
    v1, _ = service.query_versioned(q)
    assert (v0, v1) == (0, 1)
    assert service.graph_at(0).has_edge("x1", "x2") is False
    assert service.graph_at(1).has_edge("x1", "x2") is True


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
def test_executor_thread_mode_identity():
    g = _mixed_graph(8)
    workload = _workload(g, seed=17, pairs=30)
    service = EngineService(g.copy())
    serial = [freeze_answer(a) for a in service.query_batch(workload)]
    with QueryExecutor(service, STRESS_WORKERS, max_batch=7) as ex:
        futures = [ex.submit(q) for q in workload]
        got = [freeze_answer(f.result(timeout=120)) for f in futures]
        assert got == serial
        assert freeze_answer(ex.submit_batch(workload).result(timeout=120)[0]) \
            == serial[0]
        mapped = [freeze_answer(a) for a in ex.map(workload)]
        assert mapped == serial
        stats = ex.workload_stats()
        assert stats["batched_queries"] >= len(workload) * 3
        assert stats["max_batch"] >= 1
    with pytest.raises(RuntimeError):
        ex.submit(workload[0])  # shut down


def test_executor_micro_batching_batches_backlog():
    g = _mixed_graph(9)
    service = EngineService(g.copy())
    workload = _workload(g, seed=23, pairs=40, patterns=2)
    # One worker + a pre-loaded queue forces the adaptive path: the worker
    # must drain multiple compatible tasks per wake-up.
    ex = QueryExecutor(service, 1, max_batch=16)
    futures = [ex.submit(q) for q in workload]
    results = [freeze_answer(f.result(timeout=120)) for f in futures]
    ex.shutdown()
    assert results == [freeze_answer(a) for a in service.query_batch(workload)]
    assert ex.workload_stats()["max_batch"] > 1


def test_executor_rejects_bad_args():
    g = _mixed_graph(10)
    service = EngineService(g)
    with pytest.raises(ValueError):
        QueryExecutor(service, 0)
    with pytest.raises(ValueError):
        QueryExecutor(service, 2, mode="coroutine")
    with pytest.raises(ValueError):
        QueryExecutor(service, 2, max_batch=0)


def test_executor_error_propagates_through_future():
    g = _mixed_graph(11)
    service = EngineService(g)
    q = ReachabilityQuery(g.node_list()[0], g.node_list()[1])
    expected = service.query(q)
    with QueryExecutor(service, 1, max_batch=8) as ex:
        # One worker + an eagerly filled queue: the invalid submission is
        # absorbed into the same micro-batch as its valid neighbours.
        futures = [ex.submit(q), ex.submit(("not", "a", "query")), ex.submit(q)]
        with pytest.raises(TypeError):
            futures[1].result(timeout=120)
        # ...and must fail alone: batch-mates still get their answers.
        assert futures[0].result(timeout=120) == expected
        assert futures[2].result(timeout=120) == expected


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs POSIX fork")
def test_executor_fork_mode_identity_and_respawn():
    g = _mixed_graph(12)
    workload = _workload(g, seed=29, pairs=24, patterns=3)
    service = EngineService(g.copy())
    serial = [freeze_answer(a) for a in service.query_batch(workload)]
    with QueryExecutor(service, 2, mode="fork", max_batch=6) as ex:
        got = [freeze_answer(a) for a in ex.map(workload)]
        assert got == serial
        fut = ex.submit(workload[0])
        assert fut.result(timeout=120) == workload[0].evaluate(g)
        assert fut.epoch_version == 0
        # Publication retires the pool; the next submit re-forks against
        # the new epoch and answers reflect the new graph.
        service.apply([("+", workload[0].source, workload[0].target)])
        fut2 = ex.submit(workload[0])
        assert fut2.result(timeout=120) is True
        assert fut2.epoch_version == 1


# ----------------------------------------------------------------------
# Randomized reader/writer interleavings (the headline contract)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["csr", "dict"])
def test_stress_interleaved_readers_and_writer(backend):
    g = _mixed_graph(13)
    report = run_stress(
        g, backend=backend, readers=STRESS_WORKERS, writer_batches=5,
        batch_size=6, queries_per_reader=12, seed=101, writer_pause_s=0.003,
    )
    assert report["errors"] == []
    assert report["mismatches"] == 0
    assert report["checked"] >= STRESS_WORKERS * 12
    assert report["epochs_published"] == 6
    assert report["draining_after_join"] == 0
    assert report["current_freed_after_close"] is True


def test_stress_through_executor():
    g = _mixed_graph(14)
    report = run_stress(
        g, readers=3, writer_batches=4, batch_size=6, queries_per_reader=10,
        seed=211, executor_workers=STRESS_WORKERS, writer_pause_s=0.003,
    )
    assert report["errors"] == []
    assert report["mismatches"] == 0
    assert len(report["versions_seen"]) >= 1
    assert report["per_class"]  # stats flowed through the shared RouterStats


def test_stress_randomized_seeds():
    for seed in random.Random(7).sample(range(10_000), 3):
        g = _mixed_graph(seed % 50)
        report = run_stress(
            g, readers=2, writer_batches=3, batch_size=5,
            queries_per_reader=8, seed=seed, writer_pause_s=0.002,
        )
        assert report["errors"] == []
        assert report["mismatches"] == 0


def test_build_schedule_is_deterministic():
    g = _mixed_graph(15)
    a = build_schedule(g, writer_batches=4, batch_size=6, seed=5)
    b = build_schedule(g, writer_batches=4, batch_size=6, seed=5)
    assert a[0] == b[0]
    assert [freeze_answer(direct_answer(g, q)) for q in a[1]] \
        == [freeze_answer(direct_answer(g, q)) for q in b[1]]


# ----------------------------------------------------------------------
# Hash-seed independence (subprocess, like the engine suite)
# ----------------------------------------------------------------------
_SEED_SCRIPT = r"""
import json, random
from repro.graph.digraph import DiGraph
from repro.graph.generators import attach_equivalent_leaves
from repro.queries.reachability import ReachabilityQuery
from repro.datasets.patterns import random_pattern
from repro.service import EngineService, QueryExecutor, freeze_answer

g = DiGraph()
ring = [f"core{i}" for i in range(8)]
for a, b in zip(ring, ring[1:] + ring[:1]):
    g.add_edge(a, b)
for j in range(5):
    g.add_edge(ring[j], f"hub{j}")
    g.set_label(f"hub{j}", f"L{j % 2}")
attach_equivalent_leaves(g, [4, 3], parents_per_group=2, seed=13)

service = EngineService(g.copy())
out = []
rng = random.Random(3)
for step in range(3):
    # Hash-order-independent batches (see tests/test_engine.py).
    batch_rng = random.Random(100 + step)
    graph = service._engine.graph
    nodes = graph.node_list()
    edges = sorted(graph.edge_list())
    batch = [("+", batch_rng.choice(nodes), batch_rng.choice(nodes))
             for _ in range(5)]
    batch += [("-",) + batch_rng.choice(edges) for _ in range(3)]
    service.apply(batch)
    nodes = service._engine.graph.node_list()
    queries = [ReachabilityQuery(nodes[rng.randrange(len(nodes))],
                                 nodes[rng.randrange(len(nodes))])
               for _ in range(10)]
    queries.append(random_pattern(service._engine.graph, 3, 3, max_bound=2,
                                  seed=step))
    ex = QueryExecutor(service, 3, max_batch=4)
    answers = ex.map(queries)
    ex.shutdown()
    out.append([freeze_answer(a) for a in answers])
out.append(service._engine.freeze().digest())
print(json.dumps(out))
"""


def _run_with_hash_seed(seed: str):
    env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-c", _SEED_SCRIPT],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(proc.stdout)


def test_service_answers_identical_across_hash_seeds():
    a = _run_with_hash_seed("0")
    b = _run_with_hash_seed("1")
    assert a == b


# ----------------------------------------------------------------------
# Concurrent catalog sharing (executor workers + one catalog)
# ----------------------------------------------------------------------
def test_service_with_shared_catalog_warm_hits(tmp_path):
    from repro.store.catalog import SnapshotCatalog

    g = _mixed_graph(16)
    SnapshotCatalog(tmp_path).warm(g.copy())
    catalog = SnapshotCatalog(tmp_path)
    service = EngineService(g.copy(), catalog=catalog)
    workload = _workload(g, seed=41, pairs=12, patterns=2)
    with QueryExecutor(service, STRESS_WORKERS, max_batch=5) as ex:
        got = [freeze_answer(a) for a in ex.map(workload)]
    assert got == [freeze_answer(direct_answer(g, q)) for q in workload]
    assert service.counters["catalog_warm_hits"] == 2


def test_concurrent_readers_share_one_artifact_build():
    g = _mixed_graph(17)
    service = EngineService(g.copy())
    barrier = threading.Barrier(4)
    results = []

    def hammer(i):
        barrier.wait()
        q = random_pattern(g, 3, 3, max_bound=2, seed=i % 2)  # 2 distinct
        results.append(freeze_answer(service.query(q)))

    threads = [threading.Thread(target=hammer, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert len(results) == 4
    # One artifact build despite 4 concurrent first readers.
    assert service.counters["artifact_builds"] == 1


def test_executor_survives_caller_side_cancel():
    """A future cancelled while queued must not kill the worker loop."""
    g = _mixed_graph(18)
    service = EngineService(g.copy())
    q = ReachabilityQuery(g.node_list()[0], g.node_list()[1])
    expected = service.query(q)
    with QueryExecutor(service, 1, max_batch=1) as ex:
        futures = [ex.submit(q) for _ in range(50)]
        cancelled = sum(f.cancel() for f in futures)
        done = [f.result(timeout=120) for f in futures if not f.cancelled()]
        assert all(a == expected for a in done)
        assert cancelled + len(done) == 50
        # The pool is still alive after the cancel storm.
        assert ex.submit(q).result(timeout=120) == expected


def test_fork_reset_drops_pending_memo_entries():
    """A forked child must not inherit in-flight memo computations."""
    from repro.queries.matching import MatchContext

    g = _mixed_graph(19)
    ctx = MatchContext(g).seal()
    assert ctx.memo_compute("warm", lambda: {"a": {1}}) == {"a": {1}}
    # Simulate a computation that was mid-flight at fork time.
    ctx._answer_memo["stuck"] = ("pending", threading.Event())
    ctx._reset_lock_after_fork()
    assert "stuck" not in ctx._answer_memo  # would deadlock the child
    assert ctx.memo_compute("warm", lambda: {"x": set()}) == {"a": {1}}  # kept
