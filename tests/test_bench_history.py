"""Tests for :mod:`repro.bench.history` and its regression-gate hooks.

Three contracts:

* **Recording** — ``BENCH_*.json``-shaped payloads reduce to one compact
  record per run via the same ratio spec the gate uses; appends are
  best-effort JSONL and loading skips malformed lines.
* **Rendering** — ``trend`` output counts runs, shows per-ratio
  trajectories oldest-first with overall drift, and degrades gracefully
  on an empty history.
* **Gate integration** — a loaded history adds a trend column to gate
  lines, and a ratio registered in ``EXPECTED_REGRESSIONS`` is reported
  (with its reason) instead of failing, while unregistered regressions
  still fail.
"""

from __future__ import annotations

import json

from repro.bench.history import (
    append_payload,
    append_record,
    load_history,
    ratio_series,
    record_from_payload,
    render_trend,
    result_payload,
    trend_cell,
)
from repro.bench.regression import EXPECTED_REGRESSIONS, compare_payloads


def _service_payload(speedup: float, with_percentiles: bool = True) -> dict:
    payload = {
        "experiment": "service",
        "rows": [
            {"graph": "social", "mode": "thread", "workers": 4,
             "speedup": speedup},
            {"graph": "social", "mode": "fork", "workers": 4,
             "speedup": 0.18},
            # Non-numeric / NaN / bool values never become ratios.
            {"graph": "social", "mode": "stress", "workers": 1,
             "speedup": float("nan")},
            {"graph": "social", "mode": "noop", "workers": 0,
             "speedup": True},
        ],
        "checks": [
            {"description": "identical answers", "passed": True, "gate": True},
            {"description": "advisory", "passed": False, "gate": False},
        ],
    }
    if with_percentiles:
        payload["percentiles"] = {
            "reachability": {"tail_ratio": 3.5, "count": 200},
            "broken": {"tail_ratio": "n/a"},
        }
    return payload


class TestRecording:
    def test_record_from_payload_reduces_via_spec(self):
        record = record_from_payload(_service_payload(2.0), "run")
        assert record["experiment"] == "service"
        assert record["source"] == "run"
        assert record["ratios"]["social/thread/4"] == {"speedup": 2.0}
        assert record["ratios"]["social/fork/4"] == {"speedup": 0.18}
        assert "social/stress/1" not in record["ratios"]  # NaN filtered
        assert "social/noop/0" not in record["ratios"]    # bool filtered
        assert record["checks"] == {"passed": 1, "failed": 1}
        assert record["percentiles"] == {"reachability": 3.5}

    def test_unknown_experiment_yields_none(self):
        assert record_from_payload({"experiment": "mystery", "rows": []},
                                   "run") is None
        assert record_from_payload({}, "run") is None

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "nested" / "history.jsonl"
        for speedup in (2.0, 1.9):
            assert append_payload(_service_payload(speedup), "run",
                                  path) is not None
        # No-spec payloads are not recorded (and do not error).
        assert append_payload({"experiment": "mystery"}, "run", path) is None
        records = load_history(path)
        assert [r["ratios"]["social/thread/4"]["speedup"]
                for r in records] == [2.0, 1.9]

    def test_load_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        good = record_from_payload(_service_payload(1.5), "check")
        path.write_text(
            "not json\n"
            + json.dumps(good) + "\n"
            + json.dumps(["a", "list"]) + "\n"
            + json.dumps({"no-experiment": True}) + "\n"
            + "\n"
        )
        records = load_history(path)
        assert len(records) == 1 and records[0]["source"] == "check"

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_append_record_best_effort(self, tmp_path):
        # A directory where the file should be: open() fails, returns False.
        path = tmp_path / "history.jsonl"
        path.mkdir()
        assert append_record({"experiment": "service"}, path) is False

    def test_result_payload_adapts_check_tuples(self):
        class FakeResult:
            experiment = "service"
            rows = [{"graph": "g", "mode": "thread", "workers": 2,
                     "speedup": 1.0}]
            checks = [("all good", True), ("not so", False)]

        payload = result_payload(FakeResult())
        assert payload["checks"] == [
            {"description": "all good", "passed": True},
            {"description": "not so", "passed": False},
        ]
        record = record_from_payload(payload, "run")
        assert record["checks"] == {"passed": 1, "failed": 1}


class TestRendering:
    def _records(self, *speedups):
        return [record_from_payload(_service_payload(s), "run")
                for s in speedups]

    def test_ratio_series_and_trend_cell(self):
        records = self._records(2.0, 1.9, 1.8)
        series = ratio_series(records, "service", "social/thread/4", "speedup")
        assert series == [2.0, 1.9, 1.8]
        assert trend_cell(series) == "2.00→1.90→1.80"
        assert trend_cell(series, width=2) == "1.90→1.80"
        assert trend_cell([]) == ""
        assert ratio_series(records, "service", "no/such/key", "speedup") == []

    def test_render_trend_counts_runs_and_shows_drift(self):
        lines = render_trend(self._records(2.0, 1.0))
        assert lines[0].startswith("bench history: 2 recorded run(s)")
        thread_line = next(ln for ln in lines if "social/thread/4" in ln)
        assert "2 → 1" in thread_line
        assert "(-50.0% since first)" in thread_line

    def test_render_trend_empty_and_filtered(self):
        assert "history is empty" in render_trend([])[0]
        lines = render_trend(self._records(2.0), experiment="kernels")
        assert "no history records" in lines[0]

    def test_render_trend_limit(self):
        lines = render_trend(self._records(*range(1, 16)), limit=3)
        thread_line = next(ln for ln in lines if "social/thread/4" in ln)
        # Only the 3 most recent values appear.
        assert thread_line.count("→") == 2
        assert "13 → 14 → 15" in thread_line


class TestGateIntegration:
    def test_trend_column_appears_with_history(self):
        baseline = _service_payload(2.0, with_percentiles=False)
        current = _service_payload(1.9, with_percentiles=False)
        history = [record_from_payload(_service_payload(s), "run")
                   for s in (2.0, 1.9)]
        ok, lines = compare_payloads(baseline, current, tolerance=0.5,
                                     history=history)
        thread_line = next(ln for ln in lines if "social/thread/4" in ln)
        assert "[trend 2.00→1.90]" in thread_line
        # Without history the same line has no trend column.
        _, bare_lines = compare_payloads(baseline, current, tolerance=0.5)
        bare = next(ln for ln in bare_lines if "social/thread/4" in ln)
        assert "[trend" not in bare

    def test_expected_regression_is_reported_not_gated(self):
        assert ("service", ("social", "fork", 4), "speedup") \
            in EXPECTED_REGRESSIONS
        baseline = _service_payload(2.0, with_percentiles=False)
        # fork/4 sits at 0.18 in current vs 0.18 baseline row — drop the
        # baseline's fork row to 1.0 so it would fail hard if gated.
        for row in baseline["rows"]:
            if row["mode"] == "fork":
                row["speedup"] = 1.0
        current = _service_payload(2.0, with_percentiles=False)
        ok, lines = compare_payloads(baseline, current, tolerance=0.5)
        assert ok
        fork_line = next(ln for ln in lines if "social/fork/4" in ln)
        assert fork_line.startswith("note ")
        assert "expected regression" in fork_line
        assert "cross-process memo" in fork_line

    def test_unregistered_regression_still_fails(self):
        baseline = _service_payload(2.0, with_percentiles=False)
        current = _service_payload(0.5, with_percentiles=False)
        ok, lines = compare_payloads(baseline, current, tolerance=0.5)
        assert not ok
        assert any(ln.startswith("FAIL") and "social/thread/4" in ln
                   for ln in lines)


class TestCLI:
    def test_trend_subcommand(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        path = tmp_path / "history.jsonl"
        for speedup in (2.0, 1.8):
            append_payload(_service_payload(speedup), "run", path)
        assert main(["trend", "--history", str(path)]) == 0
        out = capsys.readouterr().out
        assert "bench history: 2 recorded run(s)" in out
        assert "social/thread/4 speedup: 2 → 1.8" in out

    def test_trend_subcommand_empty(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        assert main(["trend", "--history",
                     str(tmp_path / "none.jsonl")]) == 0
        assert "history is empty" in capsys.readouterr().out
