"""Tests for ``IncBMatch`` — incremental bounded-simulation maintenance."""

import random

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_graph
from repro.queries.incremental_match import IncrementalMatcher
from repro.queries.matching import match
from repro.queries.pattern import STAR, GraphPattern
from repro.datasets.patterns import random_pattern


def test_randomized_batches_match_from_scratch():
    rng = random.Random(13)
    for trial in range(20):
        n = rng.randrange(6, 22)
        m = rng.randrange(5, min(70, n * (n - 1)))
        g = gnm_random_graph(n, m, num_labels=3, seed=trial * 31)
        q = random_pattern(g, rng.randrange(2, 5), rng.randrange(2, 5),
                           max_bound=3, star_prob=0.3, seed=trial)
        inc = IncrementalMatcher(q, g)
        work = g.copy()
        for step in range(5):
            batch = []
            for _ in range(rng.randrange(1, 5)):
                if rng.random() < 0.6:
                    batch.append(("+", rng.randrange(n), rng.randrange(n)))
                else:
                    edges = work.edge_list()
                    if edges:
                        u, v = rng.choice(edges)
                        batch.append(("-", u, v))
            for op, u, v in batch:
                (work.add_edge if op == "+" else work.remove_edge)(u, v)
            got = inc.apply(batch)
            assert got == match(q, work), f"trial {trial} step {step}"


def test_insertion_grows_and_deletion_shrinks_matches():
    g = DiGraph.from_edges([("a", "b")])
    g.set_label("a", "A")
    g.set_label("b", "B")
    g.add_node("a2", "A")
    q = GraphPattern()
    q.add_node(0, "A")
    q.add_node(1, "B")
    q.add_edge(0, 1, 1)
    inc = IncrementalMatcher(q, g)
    assert inc.current()[0] == {"a"}
    result = inc.apply([("+", "a2", "b")])
    assert result[0] == {"a", "a2"}
    result = inc.apply([("-", "a", "b"), ("-", "a2", "b")])
    assert result == {}


def test_new_node_forces_rebuild_and_stays_correct():
    g = DiGraph.from_edges([("a", "b")])
    g.set_label("a", "A")
    g.set_label("b", "B")
    q = GraphPattern()
    q.add_node(0, "A")
    q.add_node(1, "B")
    q.add_edge(0, 1, 2)
    inc = IncrementalMatcher(q, g)
    inc.apply([("+", "b", "c")])  # brand-new node
    work = inc.graph
    assert inc.current() == match(q, work)


def test_star_bound_maintenance():
    chain = [(i, i + 1) for i in range(5)]
    g = DiGraph.from_edges(chain)
    for v in g.nodes():
        g.set_label(v, "N")
    g.set_label(0, "S")
    q = GraphPattern()
    q.add_node(0, "S")
    q.add_node(1, "N")
    q.add_edge(0, 1, STAR)
    inc = IncrementalMatcher(q, g)
    assert inc.current() == {0: {0}, 1: {1, 2, 3, 4, 5}}
    # Pattern node 1 has no out-edges, so its candidates are unconstrained;
    # a mid-chain deletion leaves the maximum match unchanged.
    inc.apply([("-", 2, 3)])
    assert inc.current() == match(q, inc.graph)
    assert inc.current()[0] == {0}
    # Cutting S off from every N destroys the match entirely.
    inc.apply([("-", 0, 1)])
    assert inc.current() == {}
    # Restoring the edge brings the match back.
    inc.apply([("+", 0, 1)])
    assert inc.current()[0] == {0}


def test_unknown_op_rejected():
    g = DiGraph.from_edges([(1, 2)])
    q = GraphPattern()
    q.add_node(0, "σ")
    inc = IncrementalMatcher(q, g)
    with pytest.raises(ValueError):
        inc.apply([("!", 1, 2)])
