"""End-to-end equivalence suite for :mod:`repro.engine`.

The engine's contract is exactness: every routed answer — after hypernode
expansion — equals from-scratch evaluation of the same query on the
original graph, before and after arbitrary interleaved update batches, on
both construction backends, under any ``PYTHONHASHSEED``.  These tests
randomize all of it.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys

import pytest

from repro.engine import GraphEngine, QueryRouter, UpdateLog, effective_updates
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.generators import attach_equivalent_leaves, gnm_random_graph
from repro.datasets.patterns import random_pattern
from repro.datasets.updates import mixed_batch
from repro.queries.matching import match
from repro.queries.pattern import GraphPattern
from repro.queries.reachability import ReachabilityQuery, evaluate_reachability

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _mixed_graph(seed: int, n: int = 60, m: int = 180) -> DiGraph:
    g = gnm_random_graph(n, m, num_labels=4, seed=seed)
    attach_equivalent_leaves(g, [4, 3, 3], parents_per_group=2, seed=seed + 1)
    return g


def _workload(graph: DiGraph, rng: random.Random, pairs: int = 25, patterns: int = 4):
    nodes = graph.node_list()
    queries = [
        ReachabilityQuery(rng.choice(nodes), rng.choice(nodes)) for _ in range(pairs)
    ]
    for i in range(patterns):
        queries.append(
            random_pattern(
                graph, 3, 3, max_bound=2, star_prob=0.3, seed=rng.randrange(10 ** 6)
            )
        )
    return queries


def _direct_answer(graph: DiGraph, q):
    if isinstance(q, ReachabilityQuery):
        return evaluate_reachability(graph, q.source, q.target)
    return match(q, graph)


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------
def test_router_routes_query_classes():
    router = QueryRouter()
    assert router.route(ReachabilityQuery(1, 2)) == "reachability"
    assert router.route(GraphPattern()) == "pattern"
    assert router.route(ReachabilityQuery(1, 2), on="original") == "original"
    # Paper spellings.
    assert router.route(ReachabilityQuery(1, 2), on="Gr") == "reachability"
    assert router.route(GraphPattern(), on="Gb") == "pattern"
    assert router.route(GraphPattern(), on="G") == "original"


def test_router_rejects_bad_targets():
    router = QueryRouter()
    with pytest.raises(ValueError):
        router.route(ReachabilityQuery(1, 2), on="interval")
    with pytest.raises(TypeError):
        router.route(ReachabilityQuery(1, 2), on="pattern")  # not preserved
    with pytest.raises(TypeError):
        router.route(GraphPattern(), on="reachability")
    with pytest.raises(TypeError):
        router.route(("u", "v"))  # bare tuples are not first-class queries


def test_engine_rejects_bad_args():
    g = gnm_random_graph(5, 6, seed=1)
    with pytest.raises(ValueError):
        GraphEngine(g, backend="numpy")
    with pytest.raises(ValueError):
        GraphEngine(g, refreeze_threshold=0)
    with pytest.raises(TypeError):
        GraphEngine(42)
    engine = GraphEngine(g)
    with pytest.raises(ValueError):
        engine.artifact("interval")
    with pytest.raises(TypeError):
        engine.query(("u", "v"))


# ----------------------------------------------------------------------
# Static equivalence (no updates)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["csr", "dict"])
def test_routed_equals_direct_randomized(backend):
    rng = random.Random(101)
    for trial in range(6):
        g = _mixed_graph(seed=trial * 11)
        engine = GraphEngine(g.copy(), backend=backend)
        for q in _workload(g, rng):
            want = _direct_answer(g, q)
            assert engine.query(q) == want
            assert engine.query(q, on="original") == want
            forced = "Gr" if isinstance(q, ReachabilityQuery) else "Gb"
            assert engine.query(q, on=forced) == want


def test_engine_from_snapshot_and_paths(tmp_path):
    from repro.graph.io import write_graph
    from repro.store.format import save_snapshot

    # String node ids: the text edge-list format round-trips string tokens
    # exactly (JSON stores repr() identities, ints become "5" etc.), so an
    # all-string graph keeps query node names valid through the file.
    base = _mixed_graph(seed=3, n=30, m=80)
    g = DiGraph()
    for v in base.node_list():
        g.add_node(f"n{v}", base.label(v))
    for u, v in base.edge_list():
        g.add_edge(f"n{u}", f"n{v}")
    rng = random.Random(7)
    workload = _workload(g, rng, pairs=15, patterns=2)
    want = [_direct_answer(g, q) for q in workload]

    frozen = CSRGraph.from_digraph(g)
    save_snapshot(frozen, tmp_path / "g.rgs")
    write_graph(g, tmp_path / "g.txt")

    for source in (frozen, str(tmp_path / "g.rgs"), tmp_path / "g.txt"):
        engine = GraphEngine(source)
        assert engine.query_batch(workload) == want
    # .rgs stays frozen — no thaw before first use.
    engine = GraphEngine(str(tmp_path / "g.rgs"))
    assert engine.describe()["frozen"]


def test_query_batch_shares_session_cache():
    g = _mixed_graph(seed=5, n=40, m=110)
    engine = GraphEngine(g.copy())
    q1 = random_pattern(g, 3, 3, max_bound=2, seed=1)
    q2 = random_pattern(g, 3, 3, max_bound=2, seed=2)
    batch = engine.query_batch([q1, q2])
    ctx = engine.context_for("pattern")
    assert engine.context_for("pattern") is ctx  # stable across the batch
    engine.clear_session_cache()
    assert engine.context_for("pattern") is not ctx
    assert engine.query_batch([q1, q2]) == batch  # cache is pure speedup


# ----------------------------------------------------------------------
# Interleaved updates: the randomized lifecycle equivalence suite
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["csr", "dict"])
def test_interleaved_queries_and_updates_equivalence(backend):
    """Engine answers equal from-scratch evaluation after every batch."""
    for trial in range(4):
        rng = random.Random(500 + trial)
        g = _mixed_graph(seed=trial * 17, n=50, m=150)
        reference = g.copy()  # maintained independently of the engine
        engine = GraphEngine(
            g.copy(), backend=backend, refreeze_threshold=40 if trial % 2 else 0.25
        )
        if trial % 2:
            engine.query_batch(_workload(reference, rng, pairs=5, patterns=1))

        for step in range(4):
            batch = mixed_batch(reference, 18, insert_ratio=0.6, seed=1000 * trial + step)
            if step == 2:
                # Updates touching brand-new nodes exercise node creation in
                # the maintainers, the log and the re-freeze merge.
                fresh = f"new-{trial}-{step}"
                batch = batch + [
                    ("+", fresh, reference.node_list()[0]),
                    ("+", reference.node_list()[1], fresh),
                ]
            for op, u, v in batch:
                (reference.add_edge if op == "+" else reference.remove_edge)(u, v)
            engine.apply(batch)

            assert engine.graph.structure_equal(reference)
            for q in _workload(reference, rng, pairs=12, patterns=2):
                want = _direct_answer(reference, q)
                assert engine.query(q) == want
                assert engine.query(q, on="original") == want

        # After everything, the engine's snapshot equals a full freeze.
        assert engine.freeze().digest() == CSRGraph.from_digraph(reference).digest()


def test_refreeze_threshold_trips_and_preserves_identity():
    g = _mixed_graph(seed=9, n=40, m=120)
    reference = g.copy()
    engine = GraphEngine(g.copy(), refreeze_threshold=10)
    engine.reachability()
    engine.bisimulation()
    saw_refreeze = False
    for step in range(3):
        batch = mixed_batch(reference, 12, insert_ratio=0.5, seed=77 + step)
        for op, u, v in batch:
            (reference.add_edge if op == "+" else reference.remove_edge)(u, v)
        report = engine.apply(batch)
        if report.refrozen:
            saw_refreeze = True
            assert report.staleness == 0
            assert engine.freeze().digest() == CSRGraph.from_digraph(reference).digest()
    assert saw_refreeze
    # Threshold None never auto-refreezes.
    lazy = GraphEngine(g.copy(), refreeze_threshold=None)
    lazy.reachability()
    batch = mixed_batch(g, 30, insert_ratio=0.5, seed=5)
    assert lazy.apply(batch).refrozen is False


def test_update_report_counts_redundant_ops():
    g = DiGraph.from_edges([("a", "b"), ("b", "c")])
    engine = GraphEngine(g.copy(), refreeze_threshold=None)
    report = engine.apply([
        ("+", "a", "b"),   # present: redundant
        ("-", "x", "y"),   # absent: redundant
        ("+", "c", "a"),   # effective
        ("-", "c", "a"),   # effective (cancels in the net log)
    ])
    assert report.applied == 2 and report.redundant == 2
    assert engine.staleness == 0  # insert+delete cancelled in the net delta
    assert engine.graph.structure_equal(g)


def test_effective_updates_and_update_log_net_semantics():
    g = DiGraph.from_edges([(1, 2), (2, 3)])
    ops = [("+", 1, 2), ("-", 1, 2), ("+", 1, 2), ("+", 3, 4), ("-", 3, 4), ("-", 2, 3)]
    eff = effective_updates(g, ops)
    # The first (1,2) insert is redundant; afterwards presence toggles.
    assert eff == [("-", 1, 2), ("+", 1, 2), ("+", 3, 4), ("-", 3, 4), ("-", 2, 3)]
    assert not g.has_edge(3, 4) and g.has_edge(1, 2)  # graph untouched
    log = UpdateLog()
    log.record(eff)
    assert log.added == [] and log.removed == [(2, 3)]
    assert log.staleness == 1
    with pytest.raises(ValueError):
        effective_updates(g, [("?", 1, 2)])


def test_net_zero_batch_with_new_node_keeps_snapshot_stale():
    """Edge deltas that cancel out must not mask a created node.

    ``DiGraph.remove_edge`` keeps endpoints, so ``+e, -e`` on a brand-new
    node leaves the node behind with no net edge delta; the snapshot is
    missing it and must read as stale until the next freeze — otherwise
    ``on="original"`` answers diverge from routed ones.
    """
    g = DiGraph.from_edges([("a", "b")])
    engine = GraphEngine(g.copy(), refreeze_threshold=None)
    engine.reachability()  # freezes the pre-update snapshot
    engine.apply([("+", "new", "a"), ("-", "new", "a")])
    assert engine.staleness > 0  # node creation alone keeps it stale
    q = ReachabilityQuery("new", "new")
    assert engine.query(q) is True  # reflexive on the live graph
    assert engine.query(q, on="original") is True  # must agree
    # freeze() must not early-return the node-missing snapshot.
    reference = g.copy()
    reference.add_edge("new", "a")
    reference.remove_edge("new", "a")
    assert engine.freeze().digest() == CSRGraph.from_digraph(reference).digest()
    assert engine.staleness == 0


def test_freeze_falls_back_when_new_node_order_diverges():
    """A deleted edge that introduced a node forces the full-freeze path."""
    g = DiGraph.from_edges([("a", "b")])
    engine = GraphEngine(g.copy(), refreeze_threshold=None)
    engine.freeze()
    engine.apply([("+", "n1", "a"), ("+", "n2", "a"), ("-", "n1", "a")])
    # The net delta only mentions n2, but the live graph created n1 first:
    # merge_deltas would order n1 after n2 — freeze() must detect and fall
    # back, keeping the snapshot identical to a from-scratch freeze.
    reference = g.copy()
    for op, u, v in [("+", "n1", "a"), ("+", "n2", "a"), ("-", "n1", "a")]:
        (reference.add_edge if op == "+" else reference.remove_edge)(u, v)
    assert engine.freeze().digest() == CSRGraph.from_digraph(reference).digest()


# ----------------------------------------------------------------------
# Catalog integration
# ----------------------------------------------------------------------
def test_warm_catalog_session_identity(tmp_path):
    from repro.store.catalog import SnapshotCatalog

    g = _mixed_graph(seed=21, n=45, m=130)
    cold = GraphEngine(g.copy(), catalog=SnapshotCatalog(tmp_path))
    rc_cold = cold.reachability()
    pc_cold = cold.bisimulation()
    assert cold.counters["catalog_warm_hits"] == 0

    warm_catalog = SnapshotCatalog(tmp_path)  # fresh handle = new session
    warm = GraphEngine(warm_catalog.base(cold.digest()), catalog=warm_catalog)
    rc_warm = warm.reachability()
    pc_warm = warm.bisimulation()
    assert warm.counters["catalog_warm_hits"] == 2
    assert rc_warm.canonical_form() == rc_cold.canonical_form()
    assert pc_warm.canonical_form() == pc_cold.canonical_form()

    rng = random.Random(3)
    workload = _workload(g, rng, pairs=10, patterns=2)
    assert warm.query_batch(workload) == cold.query_batch(workload)


def test_updates_after_catalog_warm_stay_exact(tmp_path):
    from repro.store.catalog import SnapshotCatalog

    g = _mixed_graph(seed=33, n=40, m=110)
    catalog = SnapshotCatalog(tmp_path)
    GraphEngine(g.copy(), catalog=catalog).query_batch(
        _workload(g, random.Random(1), pairs=4, patterns=1)
    )
    engine = GraphEngine(catalog.base(catalog.digests()[0]), catalog=catalog,
                         refreeze_threshold=15)
    reference = g.copy()
    rng = random.Random(9)
    engine.query_batch(_workload(reference, rng, pairs=4, patterns=1))
    for step in range(3):
        batch = mixed_batch(reference, 10, insert_ratio=0.6, seed=200 + step)
        for op, u, v in batch:
            (reference.add_edge if op == "+" else reference.remove_edge)(u, v)
        engine.apply(batch)
        for q in _workload(reference, rng, pairs=8, patterns=2):
            assert engine.query(q) == _direct_answer(reference, q)
    # Re-freezes were published back to the shared catalog.
    assert engine.counters["refreezes"] >= 1
    assert engine.digest() in catalog


# ----------------------------------------------------------------------
# Maintainer copy semantics (the opt-out satellite)
# ----------------------------------------------------------------------
def test_incremental_maintainers_copy_opt_out():
    from repro.core.incremental_reach import IncrementalReachabilityCompressor
    from repro.core.incremental_pattern import IncrementalPatternCompressor
    from repro.queries.incremental_match import IncrementalMatcher

    g = _mixed_graph(seed=41, n=30, m=90)
    pattern = random_pattern(g, 3, 3, max_bound=2, seed=4)
    batch = mixed_batch(g, 15, insert_ratio=0.6, seed=8)

    # copy=False adopts the caller's graph object...
    owned = g.copy()
    matcher = IncrementalMatcher(pattern, owned, copy=False)
    assert matcher.graph is owned
    reach = IncrementalReachabilityCompressor(g.copy(), copy=False)
    bisim = IncrementalPatternCompressor(g.copy(), copy=False)

    # ...and produces exactly the copy=True results.
    ref_matcher = IncrementalMatcher(pattern, g)  # default: deep copy
    ref_reach = IncrementalReachabilityCompressor(g)
    ref_bisim = IncrementalPatternCompressor(g)
    assert g.structure_equal(_mixed_graph(seed=41, n=30, m=90))  # untouched

    matcher.apply(batch), ref_matcher.apply(batch)
    reach.apply(batch), ref_reach.apply(batch)
    bisim.apply(batch), ref_bisim.apply(batch)
    assert matcher.current() == ref_matcher.current()
    assert owned.structure_equal(ref_matcher.graph)  # adopted graph updated
    assert (
        reach.compression().compressed.order()
        == ref_reach.compression().compressed.order()
    )
    assert bisim.partition().as_frozen() == ref_bisim.partition().as_frozen()


def test_engine_holds_one_graph_for_first_maintainer():
    g = _mixed_graph(seed=43, n=25, m=70)
    engine = GraphEngine(g.copy(), refreeze_threshold=None)
    engine.reachability()
    engine.bisimulation()
    engine.apply(mixed_batch(g, 5, insert_ratio=0.5, seed=1))
    owner = engine._graph_owner
    assert owner is not None
    assert engine._maintainers[owner].graph is engine._graph  # adopted, not copied
    others = [k for k in engine._maintainers if k != owner]
    assert all(engine._maintainers[k].graph is not engine._graph for k in others)


# ----------------------------------------------------------------------
# Hash-seed independence
# ----------------------------------------------------------------------
_SEED_SCRIPT = r"""
import json, random, sys
from repro.engine import GraphEngine
from repro.datasets.patterns import random_pattern
from repro.datasets.updates import mixed_batch
from repro.graph.digraph import DiGraph
from repro.graph.generators import attach_equivalent_leaves

g = DiGraph()
ring = [f"core{i}" for i in range(8)]
for a, b in zip(ring, ring[1:] + ring[:1]):
    g.add_edge(a, b)
for j in range(5):
    g.add_edge(ring[j], f"hub{j}")
    g.set_label(f"hub{j}", f"L{j % 2}")
attach_equivalent_leaves(g, [4, 3], parents_per_group=2, seed=13)

engine = GraphEngine(g.copy(), refreeze_threshold=12)
rng = random.Random(3)
out = []
for step in range(3):
    # Hash-order-independent update batches: choose endpoints from the
    # insertion-ordered node list and deletions from the *sorted* edge
    # list (mixed_batch samples dict-of-sets iteration order, which is
    # exactly what PYTHONHASHSEED shuffles on string nodes).
    batch_rng = random.Random(100 + step)
    nodes = engine.graph.node_list()
    edges = sorted(engine.graph.edge_list())
    batch = [
        ("+", batch_rng.choice(nodes), batch_rng.choice(nodes))
        for _ in range(5)
    ] + [("-",) + batch_rng.choice(edges) for _ in range(3)]
    engine.apply(batch)
    nodes = sorted(map(repr, engine.graph.node_list()))
    for _ in range(10):
        u = engine.graph.node_list()[rng.randrange(engine.graph.order())]
        v = engine.graph.node_list()[rng.randrange(engine.graph.order())]
        from repro.queries.reachability import ReachabilityQuery
        out.append([repr(u), repr(v), engine.query(ReachabilityQuery(u, v))])
    q = random_pattern(engine.graph, 3, 3, max_bound=2, seed=step)
    answer = engine.query(q)
    out.append(sorted((repr(k), sorted(map(repr, vs))) for k, vs in answer.items()))
out.append(engine.freeze().digest())
print(json.dumps(out))
"""


def _run_with_hash_seed(seed: str):
    env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-c", _SEED_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout)


def test_engine_lifecycle_identical_across_hash_seeds():
    a = _run_with_hash_seed("0")
    b = _run_with_hash_seed("1")
    c = _run_with_hash_seed("42")
    assert a == b == c


# ----------------------------------------------------------------------
# Routing stats (engine.counters) and micro-batched dispatch
# ----------------------------------------------------------------------
def test_router_stats_per_class_hits_after_mixed_batch():
    from repro.engine import RouterStats

    g = _mixed_graph(21)
    engine = GraphEngine(g.copy())
    rng = random.Random(5)
    workload = _workload(g, rng, pairs=14, patterns=3)
    workload_direct = list(workload)
    engine.query_batch(workload)
    assert engine.stats.hits("reachability") == 14
    assert engine.stats.hits("pattern") == 3
    assert engine.stats.hits("original") == 0
    engine.query_batch(workload_direct, on="original")
    assert engine.stats.hits("original") == 17
    assert engine.stats.total_queries() == 34
    assert engine.counters["queries"] == 34
    snap = engine.stats.snapshot()
    assert snap["reachability"]["hits"] == 14
    assert snap["pattern"]["dispatches"] >= 1
    assert snap["reachability"]["total_ms"] >= 0.0
    # Stats steer probing order: the most-hit class comes first.
    stats = RouterStats()
    stats.record("pattern", 0.001, queries=10)
    stats.record("reachability", 0.001, queries=2)
    assert stats.hot_order(["reachability", "pattern"]) == ["pattern", "reachability"]
    assert stats.hot_order([]) == []


def test_query_batch_micro_batching_identity():
    g = _mixed_graph(22)
    engine_batch = GraphEngine(g.copy())
    engine_single = GraphEngine(g.copy())
    rng = random.Random(9)
    workload = _workload(g, rng, pairs=20, patterns=4)
    workload += workload[:6]  # duplicates exercise the dedupe path
    batched = engine_batch.query_batch(workload)
    singles = [engine_single.query(q) for q in workload]
    assert [repr(a) for a in batched] == [repr(a) for a in singles]
    # Duplicate pattern answers must be independent copies, not aliases.
    patterns = [i for i, q in enumerate(workload) if isinstance(q, GraphPattern)]
    dup_pairs = [(i, j) for i in patterns for j in patterns
                 if i < j and workload[i] is workload[j]]
    for i, j in dup_pairs:
        if batched[i]:
            assert batched[i] == batched[j]
            assert batched[i] is not batched[j]


def test_artifact_answer_batch_matches_per_query():
    g = _mixed_graph(23)
    engine = GraphEngine(g.copy())
    rng = random.Random(11)
    nodes = g.node_list()
    hot = nodes[0]  # repeated source: exercises the shared-BFS group path
    queries = [ReachabilityQuery(hot, rng.choice(nodes)) for _ in range(8)]
    queries += [ReachabilityQuery(rng.choice(nodes), rng.choice(nodes))
                for _ in range(8)]
    queries += [ReachabilityQuery(hot, hot), ReachabilityQuery("ghost", hot)]
    artifact = engine.reachability()
    batch = artifact.answer_batch(queries)
    assert batch == [artifact.answer(q) for q in queries]
    with pytest.raises(ValueError):
        artifact.answer_batch(queries, algorithm="warp")
    # Element-wise parity with answer() extends to the error paths: the
    # absent-node short circuit precedes algorithm validation.
    ghosts = [ReachabilityQuery("ghost1", "ghost2")]
    assert artifact.answer_batch(ghosts, algorithm="warp") \
        == [artifact.answer(q, algorithm="warp") for q in ghosts] == [False]
    with pytest.raises(TypeError):
        artifact.answer_batch([GraphPattern()])
    pat = engine.bisimulation()
    p = random_pattern(g, 3, 3, max_bound=2, seed=3)
    ctx = engine.context_for("pattern")
    pbatch = pat.answer_batch([p, p, p], context=ctx)
    assert pbatch[0] == pbatch[1] == pbatch[2]
    assert pbatch[1] is not pbatch[2]
    with pytest.raises(TypeError):
        pat.answer_batch([ReachabilityQuery(1, 2)])


# ----------------------------------------------------------------------
# Writer-side publication journal
# ----------------------------------------------------------------------
def test_update_journal_reconstructs_each_version():
    from repro.engine import UpdateJournal, replay_updates

    g = _mixed_graph(24)
    journal = UpdateJournal()
    base = g.copy()
    live = g.copy()
    effs = []
    for version in (1, 2, 3):
        batch = mixed_batch(live, 6, insert_ratio=0.5, seed=40 + version)
        eff = effective_updates(live, batch)
        replay_updates(live, [eff])
        journal.record(version, eff)
        effs.append(eff)
    assert journal.versions() == [1, 2, 3]
    assert journal.graph_at(base, 0).structure_equal(g)
    assert journal.graph_at(base, 3).structure_equal(live)
    # Each intermediate version equals an independent replay of exactly
    # that prefix — catches off-by-one prefix bugs in graph_at.
    for version in (1, 2):
        expected = replay_updates(g.copy(), effs[:version])
        assert journal.graph_at(base, version).structure_equal(expected)
    with pytest.raises(ValueError):
        journal.record(2, [])  # versions must increase


def test_update_journal_limit_drops_reconstruction():
    from repro.engine import UpdateJournal

    journal = UpdateJournal(limit=2)
    g = _mixed_graph(25)
    for v in (1, 2, 3):
        journal.record(v, [("+", "a", f"b{v}")])
    assert len(journal) == 2
    with pytest.raises(ValueError):
        journal.graph_at(g, 3)
