"""Shared fixtures: the paper's worked example graphs.

``recommendation_network`` encodes Figure 2 / Examples 1, 4 and 5 (the
multi-agent recommendation network); ``fig6_g1`` encodes Figure 6's ``G1``
(the A(k)-index counterexample); ``fig4_g2`` the 1-index reachability
counterexample.  Exact topologies follow the constraints stated in the
paper's prose; see each fixture's docstring.
"""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.queries.pattern import GraphPattern


@pytest.fixture
def recommendation_network() -> DiGraph:
    """Figure 2's network, sized ``k = 5`` customers.

    Constraints encoded from the text: BSA1/BSA2 are bisimilar (both
    recommend an MSA and an FA whose interaction partners are equivalent
    customers); FA1/FA2 interact in 2-cycles with customers C1/C2; FA3/FA4
    are bisimilar but *not* reachability equivalent (FA3 reaches C3, FA4
    does not); all of C3..C5 are bisimilar sinks; FA2 and FA3 are not
    bisimilar (C2 is on a cycle, C3 is a sink — Example 4).
    """
    g = DiGraph()
    labels = {
        "BSA1": "BSA", "BSA2": "BSA",
        "MSA1": "MSA", "MSA2": "MSA",
        "FA1": "FA", "FA2": "FA", "FA3": "FA", "FA4": "FA",
        "C1": "C", "C2": "C", "C3": "C", "C4": "C", "C5": "C",
    }
    for node, label in labels.items():
        g.add_node(node, label)
    for u, v in [
        ("BSA1", "MSA1"), ("BSA1", "FA1"),
        ("BSA2", "MSA2"), ("BSA2", "FA2"),
        ("FA1", "C1"), ("C1", "FA1"),
        ("FA2", "C2"), ("C2", "FA2"),
        ("FA3", "C3"), ("FA3", "C4"), ("FA4", "C5"),
    ]:
        g.add_edge(u, v)
    return g


@pytest.fixture
def pattern_qp() -> GraphPattern:
    """Example 1's pattern: BSA ⇒(≤2) C, C ⇒ FA, FA ⇒ C."""
    q = GraphPattern()
    q.add_node("BSA", "BSA")
    q.add_node("C", "C")
    q.add_node("FA", "FA")
    q.add_edge("BSA", "C", 2)
    q.add_edge("C", "FA", 1)
    q.add_edge("FA", "C", 1)
    return q


@pytest.fixture
def fig6_g1() -> DiGraph:
    """Figure 6's ``G1``: A1/A2/A3 are 1-bisimilar but not bisimilar.

    Only B1 and B5 have both a C child and a D child; the A(1)-index merges
    all B nodes (they share A parents), so the pattern {(B,C),(B,D)} gets
    spurious matches on the index graph.
    """
    g = DiGraph()
    for node, label in {
        "A1": "A", "A2": "A", "A3": "A",
        "B1": "B", "B2": "B", "B3": "B", "B4": "B", "B5": "B",
        "C1": "C", "C2": "C", "C5": "C",
        "D1": "D", "D3": "D", "D5": "D",
    }.items():
        g.add_node(node, label)
    for u, v in [
        ("A1", "B1"), ("B1", "C1"), ("B1", "D1"),
        ("A2", "B2"), ("A2", "B3"), ("B2", "C2"), ("B3", "D3"),
        ("A3", "B4"), ("A3", "B5"), ("B5", "C5"), ("B5", "D5"),
    ]:
        g.add_edge(u, v)
    return g


@pytest.fixture
def fig4_g2() -> DiGraph:
    """Figure 4's ``G2``: the 1-index merges C1/C2 yet C2 ⇝ E2, C1 ⇝̸ E2."""
    g = DiGraph()
    for node, label in {
        "R": "R", "C1": "C", "C2": "C", "E1": "E", "E2": "E",
    }.items():
        g.add_node(node, label)
    for u, v in [("R", "C1"), ("R", "C2"), ("C1", "E1"), ("C2", "E2")]:
        g.add_edge(u, v)
    return g
