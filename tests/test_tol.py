"""TOL label index suite (:mod:`repro.index.tol`).

Four angles, mirroring the engine suite's structure:

* **Randomized equivalence** — labels vs a 2-hop index vs plain BFS on
  dozens of random directed graphs (cyclic included), both construction
  backends: every lookup must agree with ground truth exactly.
* **Incremental repair** — insert-only DAG deltas patched in place via
  :func:`repro.index.tol.refresh_index` stay exact; deltas outside the
  repairable class request a rebuild instead of answering wrong.
* **Engine integration** — interleaved update batches and routed query
  batches through :class:`~repro.engine.session.GraphEngine` track
  from-scratch BFS on a mirror graph, and the catalog variant rehydrates
  byte-identically to a cold build.
* **Determinism & degradation** — the built labels are byte-stable across
  ``PYTHONHASHSEED`` (subprocess check), and a fault-injected label build
  failure degrades the routed path to BFS on ``Gr`` without changing one
  answer.
"""

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import GraphEngine
from repro.engine.router import QueryRouter
from repro.faults.plan import FaultPlan, FaultRule
from repro.graph.digraph import DiGraph
from repro.index import TOLIndex, TwoHopIndex, refresh_index
from repro.obs.metrics import MetricsRegistry, installed
from repro.queries.reachability import ReachabilityQuery, evaluate_reachability

SRC = str(Path(__file__).resolve().parents[1] / "src")


def _random_digraph(rng: random.Random, n: int, m: int) -> DiGraph:
    g = DiGraph()
    for _ in range(m):
        g.add_edge(rng.randrange(n), rng.randrange(n))
    return g


# ----------------------------------------------------------------------
# Randomized equivalence: TOL vs 2-hop vs BFS
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["csr", "dict"])
def test_tol_matches_twohop_and_bfs_on_random_graphs(backend):
    rng = random.Random(11)
    for trial in range(25):  # 25 graphs x 2 backends = 50 random graphs
        n = rng.randrange(8, 60)
        g = _random_digraph(rng, n, rng.randrange(n, 4 * n))
        tol = TOLIndex(g, backend=backend)
        twohop = TwoHopIndex(g, backend=backend)
        nodes = g.node_list()
        for _ in range(40):
            u, v = rng.choice(nodes), rng.choice(nodes)
            want = evaluate_reachability(g, u, v, "bfs")
            assert tol.reachable(u, v) == want, (trial, u, v)
            assert twohop.query(u, v) == want, (trial, u, v)


def test_tol_unknown_node_raises_tol_error():
    from repro.index.tol import TOLError

    g = DiGraph.from_edges([(1, 2)])
    tol = TOLIndex(g)
    with pytest.raises(TOLError):
        tol.reachable(1, 99)


# ----------------------------------------------------------------------
# Incremental repair
# ----------------------------------------------------------------------
def test_incremental_repair_on_dag_inserts_stays_exact():
    rng = random.Random(23)
    repairs_seen = 0
    for trial in range(10):
        n = rng.randrange(10, 40)
        g = DiGraph()
        for _ in range(3 * n):
            u, v = rng.randrange(n), rng.randrange(n)
            if u < v:
                g.add_edge(u, v)  # u < v keeps the graph a DAG
        if g.order() < 2:
            continue
        idx = TOLIndex(g)
        for _ in range(15):
            u, v = rng.randrange(n), rng.randrange(n)
            if u >= v or g.has_edge(u, v):
                continue
            g.add_edge(u, v)
            result = refresh_index(idx, g)
            if result is False:
                idx = TOLIndex(g)  # outside the repairable class
            repairs_seen += idx.repairs
            nodes = g.node_list()
            for _ in range(25):
                a, b = rng.choice(nodes), rng.choice(nodes)
                assert idx.reachable(a, b) == evaluate_reachability(
                    g, a, b, "bfs"
                ), (trial, a, b)
    assert repairs_seen > 0, "the in-place repair path was never exercised"


def test_cycle_creating_insert_requests_rebuild():
    g = DiGraph.from_edges([(1, 2), (2, 3)])
    idx = TOLIndex(g)
    g.add_edge(3, 1)  # closes a cycle: labels cannot be patched soundly
    assert refresh_index(idx, g) is False
    rebuilt = TOLIndex(g)
    assert rebuilt.reachable(3, 2) and rebuilt.reachable(2, 1)


def test_edge_removal_requests_rebuild():
    g = DiGraph.from_edges([(1, 2), (2, 3)])
    idx = TOLIndex(g)
    g.remove_edge(1, 2)
    assert refresh_index(idx, g) is False
    assert not TOLIndex(g).reachable(1, 3)


def test_refresh_on_identical_graph_is_a_no_op():
    g = DiGraph.from_edges([(1, 2), (2, 3)])
    idx = TOLIndex(g)
    assert refresh_index(idx, g) is None


# ----------------------------------------------------------------------
# Engine integration: interleaved updates and routed queries
# ----------------------------------------------------------------------
def test_engine_interleaved_updates_and_queries_stay_exact():
    rng = random.Random(5)
    for trial in range(6):
        n = 30
        g = _random_digraph(rng, n, 70)
        engine = GraphEngine(g.copy())
        mirror = g.copy()
        for round_ in range(5):
            batch = []
            for _ in range(6):
                edges = sorted(mirror.edge_list())
                if edges and rng.random() < 0.3:
                    batch.append(("-",) + rng.choice(edges))
                else:
                    batch.append(
                        ("+", rng.randrange(n + 5), rng.randrange(n + 5))
                    )
            engine.apply(batch)
            for op, u, v in batch:
                if op == "+":
                    mirror.add_edge(u, v)
                elif mirror.has_edge(u, v):
                    mirror.remove_edge(u, v)
            nodes = mirror.node_list()
            queries = [
                ReachabilityQuery(rng.choice(nodes), rng.choice(nodes))
                for _ in range(25)
            ]
            got = engine.query_batch(queries)
            want = [
                evaluate_reachability(mirror, q.source, q.target, "bfs")
                for q in queries
            ]
            assert got == want, (trial, round_)
        assert engine.counters["tol_builds"] >= 1


def test_catalog_variant_rehydrates_byte_identically(tmp_path):
    from repro.store.catalog import SnapshotCatalog

    rng = random.Random(9)
    g = _random_digraph(rng, 50, 160)
    catalog = SnapshotCatalog(tmp_path)
    digest = catalog.put(g)
    cold = catalog.tol(digest)  # computes and persists the variant
    assert catalog.has_variant(digest, "tol")
    warm = SnapshotCatalog(tmp_path).tol(digest)  # fresh handle: warm read
    assert warm.canonical_form() == cold.canonical_form()
    nodes = g.node_list()
    gr = catalog.reachability(digest)
    for _ in range(60):
        u, v = rng.choice(nodes), rng.choice(nodes)
        verdict, pair = gr.rewrite(u, v)
        if pair is not None:
            assert warm.reachable(*pair) == cold.reachable(*pair)


# ----------------------------------------------------------------------
# Cross-hash-seed byte-stability (string nodes, subprocess)
# ----------------------------------------------------------------------
_SEED_SCRIPT = """
import json, random
from repro.graph.digraph import DiGraph
from repro.index import TOLIndex

g = DiGraph()
rng = random.Random(7)
names = [f"n{i}" for i in range(40)]
for _ in range(110):
    g.add_edge(rng.choice(names), rng.choice(names))
idx = TOLIndex(g)
out = [repr(idx.canonical_form())]
for _ in range(60):
    u, v = rng.choice(names), rng.choice(names)
    out.append([u, v, idx.reachable(u, v)])
print(json.dumps(out))
"""


def _run_with_hash_seed(seed: str):
    env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-c", _SEED_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout)


def test_tol_labels_identical_across_hash_seeds():
    a = _run_with_hash_seed("0")
    b = _run_with_hash_seed("1")
    c = _run_with_hash_seed("42")
    assert a == b == c


# ----------------------------------------------------------------------
# Fault-injected build failure: degraded route, exact answers
# ----------------------------------------------------------------------
def test_tol_build_failure_degrades_route_not_answers():
    rng = random.Random(31)
    g = _random_digraph(rng, 40, 120)
    engine = GraphEngine(g.copy())
    epoch = engine.epoch(0)
    nodes = g.node_list()
    queries = [
        ReachabilityQuery(rng.choice(nodes), rng.choice(nodes))
        for _ in range(30)
    ]
    expected = [epoch.evaluate_original(q) for q in queries]
    router = QueryRouter()
    registry = MetricsRegistry()
    plan = FaultPlan(
        [FaultRule(point="epoch.build.tol", kind="error", times=None)]
    )
    with installed(registry), plan.installed():
        got = [router.dispatch(q, epoch) for q in queries]
    assert got == expected
    assert "tol" in epoch.describe()["degraded"]
    assert epoch.describe()["tol"] is False
    fallbacks = registry.get("tol_fallbacks_total")
    assert fallbacks is not None and sum(fallbacks.values().values()) >= 1
    # Sticky for the epoch's lifetime: the plan is gone, the epoch still
    # serves reachability label-free — and still exactly.
    assert [router.dispatch(q, epoch) for q in queries] == expected
    # A fresh publication gets a fresh chance at the labels.
    fresh = engine.epoch(1)
    assert [router.dispatch(q, fresh) for q in queries] == expected
    assert fresh.describe()["tol"] is True


def test_session_tol_degradation_resets_on_next_apply(monkeypatch):
    rng = random.Random(13)
    g = _random_digraph(rng, 25, 60)
    engine = GraphEngine(g.copy())
    nodes = g.node_list()
    queries = [
        ReachabilityQuery(rng.choice(nodes), rng.choice(nodes))
        for _ in range(20)
    ]
    want = [engine.query(q, on="original") for q in queries]

    def boom(artifact):
        raise RuntimeError("injected TOL build failure")

    monkeypatch.setattr(engine, "_build_tol", boom)
    assert engine.query_batch(queries) == want  # label-free, still exact
    assert engine.tol() is None  # degraded until the next update batch
    monkeypatch.undo()
    engine.apply([("+", 0, 1)])  # clears the degradation marker
    assert engine.query_batch(queries[:5]) == want[:5]
    assert engine.tol() is not None
