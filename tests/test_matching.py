"""Tests for bounded simulation Match, graph simulation, and patterns."""

import random

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_graph
from repro.queries.matching import (
    MatchContext,
    boolean_match,
    bounded_reach_set,
    match,
    match_naive,
    match_relation,
    verify_match,
)
from repro.queries.pattern import STAR, GraphPattern
from repro.queries.simulation import simulation, simulation_naive
from repro.datasets.patterns import pattern_workload, random_pattern


def chain_pattern(labels, bounds):
    q = GraphPattern()
    for i, lab in enumerate(labels):
        q.add_node(i, lab)
    for i, b in enumerate(bounds):
        q.add_edge(i, i + 1, b)
    return q


# ----------------------------------------------------------------------
# GraphPattern basics
# ----------------------------------------------------------------------
def test_pattern_validation():
    q = GraphPattern()
    q.add_node("a", "A")
    with pytest.raises(ValueError):
        q.add_edge("a", "missing", 1)
    q.add_node("b", "B")
    with pytest.raises(ValueError):
        q.add_edge("a", "b", 0)
    with pytest.raises(ValueError):
        q.add_edge("a", "b", "**")
    q.add_edge("a", "b", STAR)
    assert q.bound("a", "b") == STAR
    assert not q.is_simulation_pattern
    assert q.with_all_bounds(1).is_simulation_pattern
    assert q.bounds_used() == [STAR]


def test_pattern_adjacency_helpers():
    q = chain_pattern(["A", "B", "C"], [1, 2])
    assert q.successors(0) == [1]
    assert q.predecessors(2) == [1]
    assert q.order() == 3 and q.size() == 2
    assert q.bounds_used() == [1, 2]


# ----------------------------------------------------------------------
# bounded_reach_set — the cycle-back regression
# ----------------------------------------------------------------------
def test_bounded_reach_includes_cycle_back_to_start():
    g = DiGraph.from_edges([(1, 2), (2, 1)])
    assert bounded_reach_set(g, 1, 2) == {1, 2}
    assert bounded_reach_set(g, 1, 1) == {2}


def test_bounded_reach_respects_bound():
    g = DiGraph.from_edges([(1, 2), (2, 3), (3, 4)])
    assert bounded_reach_set(g, 1, 1) == {2}
    assert bounded_reach_set(g, 1, 2) == {2, 3}
    assert bounded_reach_set(g, 1, 10) == {2, 3, 4}


# ----------------------------------------------------------------------
# Match semantics
# ----------------------------------------------------------------------
def test_simple_bounded_match():
    g = DiGraph.from_edges([("x", "y"), ("y", "z")])
    g.set_label("x", "A"); g.set_label("y", "B"); g.set_label("z", "C")
    q = chain_pattern(["A", "C"], [2])
    result = match(q, g)
    assert result == {0: {"x"}, 1: {"z"}}
    # Bound 1 is too tight: no match at all.
    assert match(chain_pattern(["A", "C"], [1]), g) == {}


def test_star_bound_unbounded_paths():
    g = DiGraph.from_edges([(i, i + 1) for i in range(6)])
    for v in g.nodes():
        g.set_label(v, "N")
    g.set_label(0, "S")
    g.set_label(6, "T")
    q = chain_pattern(["S", "T"], [STAR])
    assert match(q, g) == {0: {0}, 1: {6}}


def test_match_is_maximum(recommendation_network, pattern_qp):
    g = recommendation_network
    result = match(pattern_qp, g)
    assert verify_match(pattern_qp, g, result)
    # Maximality: adding any excluded (u, v) pair breaks validity.
    rel = match_relation(result)
    for u in pattern_qp.nodes:
        for v in g.nodes():
            if g.label(v) != pattern_qp.label(u) or (u, v) in rel:
                continue
            bigger = {k: set(vs) for k, vs in result.items()}
            bigger[u].add(v)
            assert not verify_match(pattern_qp, g, bigger)


def test_empty_pattern_and_missing_labels():
    g = gnm_random_graph(10, 20, num_labels=2, seed=1)
    assert match(GraphPattern(), g) == {}
    q = GraphPattern()
    q.add_node(0, "NO_SUCH_LABEL")
    assert match(q, g) == {}
    assert boolean_match(q, g) is False


def test_match_vs_naive_randomized():
    rng = random.Random(6)
    for trial in range(20):
        n = rng.randrange(5, 25)
        g = gnm_random_graph(n, rng.randrange(5, min(90, n * (n - 1))), num_labels=3, seed=trial + 23)
        q = random_pattern(g, rng.randrange(2, 5), rng.randrange(2, 6),
                           max_bound=3, star_prob=0.25, seed=trial)
        got = match(q, g)
        assert got == match_naive(q, g)
        assert verify_match(q, g, got)


def test_context_reuse_and_invalidate():
    g = gnm_random_graph(15, 50, num_labels=2, seed=9)
    ctx = MatchContext(g)
    q = random_pattern(g, 3, 3, max_bound=2, seed=1)
    first = match(q, g, ctx)
    assert match(q, g, ctx) == first  # cached closures give same answer
    g.add_edge(0, 1)
    ctx.invalidate()
    assert match(q, g, ctx) == match_naive(q, g)


def test_context_graph_mismatch_rejected():
    g1 = gnm_random_graph(5, 5, seed=1)
    g2 = gnm_random_graph(5, 5, seed=2)
    ctx = MatchContext(g1)
    q = GraphPattern(); q.add_node(0, "σ")
    with pytest.raises(ValueError):
        match(q, g2, ctx)


# ----------------------------------------------------------------------
# CSR-backed context (freeze-once candidate selection)
# ----------------------------------------------------------------------
def test_context_backends_build_identical_bitsets():
    """csr and dict contexts agree bit-for-bit on every cached structure."""
    for seed in range(6):
        g = gnm_random_graph(20 + seed * 5, 60 + seed * 20, num_labels=3, seed=seed)
        fast = MatchContext(g, backend="csr")
        ref = MatchContext(g, backend="dict")
        for label in sorted(g.label_set()) + ["NO_SUCH_LABEL"]:
            assert fast.label_candidates(label) == ref.label_candidates(label)
        assert fast.adjacency_bitsets() == ref.adjacency_bitsets()
        assert fast.star_reach() == ref.star_reach()
        assert fast.bounded_reach(3) == ref.bounded_reach(3)


def test_match_identical_across_context_backends():
    rng = random.Random(31)
    for trial in range(10):
        n = rng.randrange(8, 25)
        g = gnm_random_graph(n, rng.randrange(8, min(90, n * (n - 1))), num_labels=3, seed=trial + 7)
        q = random_pattern(g, rng.randrange(2, 5), rng.randrange(2, 6),
                           max_bound=3, star_prob=0.3, seed=trial)
        assert (
            match(q, g, MatchContext(g, backend="csr"))
            == match(q, g, MatchContext(g, backend="dict"))
        )


def test_context_accepts_prefrozen_snapshot():
    from repro.graph.csr import CSRGraph

    g = gnm_random_graph(15, 45, num_labels=2, seed=12)
    csr = CSRGraph.from_digraph(g)
    ctx = MatchContext(g, csr=csr)
    assert ctx.frozen() is csr  # adopted, not re-frozen
    q = random_pattern(g, 3, 3, max_bound=2, seed=4)
    assert match(q, g, ctx) == match(q, g, MatchContext(g, backend="dict"))
    with pytest.raises(ValueError):
        MatchContext(gnm_random_graph(9, 9, seed=1), csr=csr)
    stale = g.copy()
    stale.add_edge(0, 1) if not g.has_edge(0, 1) else stale.remove_edge(0, 1)
    with pytest.raises(ValueError):  # same |V|, different |E|: stale snapshot
        MatchContext(stale, csr=csr)
    relabeled = g.copy()
    relabeled.set_label(0, "DIFFERENT")
    with pytest.raises(ValueError):  # label-stale snapshot
        MatchContext(relabeled, csr=csr)
    # A single rewire keeps u's out-degree but moves an in-degree.
    rewired = g.copy()
    u = next(v for v in g.nodes() if g.out_degree(v) > 0)
    a = next(iter(g.successors(u)))
    b = next(v for v in g.nodes() if v != a and not g.has_edge(u, v) and v != u)
    rewired.remove_edge(u, a)
    rewired.add_edge(u, b)
    with pytest.raises(ValueError):  # same |V|, |E| and out-degrees
        MatchContext(rewired, csr=csr)
    with pytest.raises(ValueError):  # snapshot only applies to the csr backend
        MatchContext(g, csr=csr, backend="dict")
    with pytest.raises(ValueError):
        MatchContext(g, backend="warp")


# ----------------------------------------------------------------------
# Graph simulation (the bounds-1 special case)
# ----------------------------------------------------------------------
def test_simulation_equals_bound1_match_randomized():
    rng = random.Random(7)
    for trial in range(15):
        n = rng.randrange(5, 25)
        g = gnm_random_graph(n, rng.randrange(5, min(90, n * (n - 1))), num_labels=3, seed=trial + 41)
        q = random_pattern(g, rng.randrange(2, 5), rng.randrange(2, 6),
                           max_bound=1, seed=trial).with_all_bounds(1)
        sim = simulation(q, g)
        assert sim == simulation_naive(q, g)
        assert sim == match(q, g)


def test_pattern_workload_shapes():
    g = gnm_random_graph(30, 100, num_labels=4, seed=3)
    sizes = [(3, 3, 3), (4, 4, 2)]
    workload = pattern_workload(g, sizes, per_size=2, seed=5)
    assert set(workload) == set(sizes)
    for (vp, ep, k), patterns in workload.items():
        assert len(patterns) == 2
        for q in patterns:
            assert q.order() == vp
            assert q.size() >= vp - 1  # connected
