"""Regression tests: compression output must not depend on hash seeds.

``DiGraph`` adjacency is stored in sets, so iteration order — and with it
Tarjan traversal order, SCC numbering, and historically the hypernode ids
of ``compress_reachability`` — used to vary with ``PYTHONHASHSEED`` on
string-node graphs.  Class/block ids are now assigned canonically (first
member in node insertion order) on every backend, so building the same
graph twice, with any backend, in any interpreter, yields byte-identical
compression artifacts, partitions and benchmark outputs.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.core.bisimulation import bisimulation_partition
from repro.core.equivalence import reachability_partition
from repro.core.reachability import compress_reachability

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _build_graph():
    """A string-node graph (string hashes are what PYTHONHASHSEED shuffles)."""
    from repro.graph.digraph import DiGraph
    from repro.graph.generators import attach_equivalent_leaves

    g = DiGraph()
    ring = [f"core{i}" for i in range(9)]
    for a, b in zip(ring, ring[1:] + ring[:1]):
        g.add_edge(a, b)
    g.add_edge("core3", "core0")  # chord
    for i, h in enumerate(f"hub{j}" for j in range(6)):
        g.add_edge(ring[i % 9], h)
        g.set_label(h, f"L{i % 2}")
    attach_equivalent_leaves(g, [5, 4, 4, 3], parents_per_group=2, seed=13)
    return g


def _fingerprint():
    """Canonical rendering of every deterministic output, as JSON."""
    g = _build_graph()
    out = {}
    for backend in ("csr", "dict"):
        rc = compress_reachability(g, backend=backend)
        gr = rc.compressed
        out[f"compress-{backend}"] = {
            "stats": [
                rc.stats().original_nodes, rc.stats().original_edges,
                rc.stats().compressed_nodes, rc.stats().compressed_edges,
            ],
            "nodes": sorted(gr.nodes()),
            "edges": sorted(gr.edges()),
            "class_of": sorted((str(v), rc.node_class(v)) for v in g.nodes()),
            "members": {
                str(h): [str(v) for v in rc.members(h)] for h in gr.nodes()
            },
        }
        reach = reachability_partition(g, backend=backend)
        out[f"reach-partition-{backend}"] = sorted(
            (str(v), reach.block_of(v)) for v in g.nodes()
        )
        bisim = bisimulation_partition(g, backend=backend)
        out[f"bisim-partition-{backend}"] = sorted(
            (str(v), bisim.block_of(v)) for v in g.nodes()
        )
    return out


def test_same_graph_twice_same_output():
    """Satellite regression: two builds of one graph, identical artifacts."""
    assert _fingerprint() == _fingerprint()


def test_backends_agree_on_ids():
    fp = _fingerprint()
    assert fp["compress-csr"] == fp["compress-dict"]
    assert fp["reach-partition-csr"] == fp["reach-partition-dict"]
    assert fp["bisim-partition-csr"] == fp["bisim-partition-dict"]


def _run_with_hash_seed(seed: str) -> dict:
    """Compute the fingerprint in a fresh interpreter with a fixed seed."""
    code = (
        "import json, sys\n"
        f"sys.path.insert(0, {SRC!r})\n"
        f"sys.path.insert(0, {os.path.dirname(__file__)!r})\n"
        "from test_determinism import _fingerprint\n"
        "print(json.dumps(_fingerprint(), sort_keys=True))\n"
    )
    env = dict(os.environ, PYTHONHASHSEED=seed)
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout)


def test_output_identical_across_hash_seeds():
    """The historical bug: ids varied across PYTHONHASHSEED runs."""
    a = _run_with_hash_seed("0")
    b = _run_with_hash_seed("12345")
    assert a == b
