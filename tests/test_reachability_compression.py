"""Tests for the reachability equivalence relation and ``compressR`` (Section 3).

Covers: cross-validation against the literal per-node-BFS definition, the
preservation theorem over all node pairs, the Fig. 5 BFS variant, the paper's
worked examples, and the degenerate same-hypernode queries resolved by ``F``.
"""

import random

from repro.core.equivalence import (
    are_reachability_equivalent,
    reachability_partition,
    reachability_partition_naive,
)
from repro.core.reachability import (
    ReachabilityCompression,
    compress_reachability,
    compress_reachability_bfs,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    attach_equivalent_leaves,
    gnm_random_graph,
)
from repro.graph.traversal import is_acyclic, path_exists


def canon(rc: ReachabilityCompression):
    mem = {h: frozenset(rc.members(h)) for h in rc.compressed.nodes()}
    return (
        frozenset(mem.values()),
        frozenset((mem[a], mem[b]) for a, b in rc.compressed.edges()),
    )


# ----------------------------------------------------------------------
# The equivalence relation Re
# ----------------------------------------------------------------------
def test_partition_matches_naive_randomized():
    rng = random.Random(0)
    for trial in range(15):
        n = rng.randrange(4, 30)
        g = gnm_random_graph(n, rng.randrange(0, min(100, n * (n - 1))), seed=trial)
        assert (
            reachability_partition(g).as_frozen()
            == reachability_partition_naive(g).as_frozen()
        )


def test_re_is_equivalence_relation():
    g = gnm_random_graph(15, 40, seed=5)
    part = reachability_partition(g)
    for block in part.blocks():
        block = list(block)
        for u in block:
            assert are_reachability_equivalent(g, u, u)  # reflexive
            for v in block:
                assert are_reachability_equivalent(g, u, v)  # block-wide


def test_siblings_with_shared_targets_are_equivalent():
    # Example 2's shape: two agents recommending the same parties.
    g = DiGraph.from_edges(
        [("BSA1", "MSA"), ("BSA1", "FA"), ("BSA2", "MSA"), ("BSA2", "FA")]
    )
    assert are_reachability_equivalent(g, "BSA1", "BSA2")
    part = reachability_partition(g)
    assert part.same_block("BSA1", "BSA2")


def test_cyclic_scc_members_are_equivalent_but_scc_is_isolated_class():
    g = DiGraph.from_edges([(1, 2), (2, 1), (3, 1)])
    part = reachability_partition(g)
    assert part.same_block(1, 2)
    assert not part.same_block(1, 3)


def test_fa3_fa4_not_equivalent(recommendation_network):
    # Example 2: FA3 reaches C3 while FA4 cannot.
    g = recommendation_network
    assert not are_reachability_equivalent(g, "FA3", "FA4")
    # but the sink customers C3/C4 share ancestors? No - different parents.
    assert not are_reachability_equivalent(g, "C3", "C5")
    assert are_reachability_equivalent(g, "C3", "C4")  # both under FA3


# ----------------------------------------------------------------------
# compressR: structure
# ----------------------------------------------------------------------
def test_compressed_graph_is_reduced_dag():
    rng = random.Random(1)
    for trial in range(10):
        g = gnm_random_graph(20, rng.randrange(5, 80), seed=trial + 40)
        rc = compress_reachability(g)
        gr = rc.compressed
        assert is_acyclic(gr)
        assert gr.graph_size() <= g.graph_size()
        # No redundant edges: removing any edge must change reachability.
        from repro.graph.transitive import transitive_closure_pairs

        closure = transitive_closure_pairs(gr)
        for u, v in list(gr.edges()):
            gr.remove_edge(u, v)
            assert transitive_closure_pairs(gr) != closure
            gr.add_edge(u, v)


def test_compression_shrinks_equivalent_leaf_groups():
    # A DAG host: distinct parent sets then imply distinct ancestor sets
    # (inside one SCC all parents would share ancestors and the groups
    # would legitimately merge).
    g = DiGraph.from_edges([("root", f"h{i}") for i in range(6)])
    attach_equivalent_leaves(g, [10, 10, 10], parents_per_group=2, seed=4)
    rc = compress_reachability(g)
    assert rc.stats().ratio < 0.6
    # All leaves of one group share a hypernode.
    assert rc.same_class("leaf:0:0", "leaf:0:9")
    groups = {rc.node_class(f"leaf:{i}:0") for i in range(3)}
    parent_sets = {
        frozenset(g.predecessors(f"leaf:{i}:0")) for i in range(3)
    }
    # Groups with different parent sets stay separate.
    assert len(groups) == len(parent_sets)


def test_node_class_and_members_are_inverse():
    g = gnm_random_graph(25, 80, seed=7)
    rc = compress_reachability(g)
    for v in g.nodes():
        assert v in rc.members(rc.node_class(v))
    sizes = rc.class_sizes()
    assert sum(sizes.values()) == g.order()


# ----------------------------------------------------------------------
# compressR: preservation (the Section 3 theorem)
# ----------------------------------------------------------------------
def test_preserves_all_pairs_randomized():
    rng = random.Random(2)
    for trial in range(12):
        n = rng.randrange(4, 25)
        g = gnm_random_graph(n, rng.randrange(0, min(90, n * (n - 1))), seed=trial + 77)
        rc = compress_reachability(g)
        for u in g.nodes():
            for v in g.nodes():
                assert rc.query(u, v) == path_exists(g, u, v), (trial, u, v)
                assert rc.query_bibfs(u, v) == path_exists(g, u, v)


def test_rewrite_degenerate_cases():
    # Same hypernode, different (trivial) SCCs: mutually unreachable.
    g = DiGraph.from_edges([("p", "a"), ("p", "b"), ("a", "s"), ("b", "s")])
    rc = compress_reachability(g)
    assert rc.same_class("a", "b")
    verdict, _ = rc.rewrite("a", "b")
    assert verdict == "false"
    assert rc.rewrite("a", "a")[0] == "true"
    # Same hypernode, same cyclic SCC: reachable.
    g2 = DiGraph.from_edges([(1, 2), (2, 1)])
    rc2 = compress_reachability(g2)
    assert rc2.rewrite(1, 2)[0] == "true"
    # Distinct hypernodes: defer to evaluation on Gr.
    verdict, pair = rc.rewrite("p", "s")
    assert verdict == "evaluate" and pair is not None
    assert rc.query("p", "s") is True


def test_custom_evaluator_runs_unmodified():
    # The compression must work with any stock algorithm, as-is.
    calls = []

    def homemade_bfs(graph, s, t):
        calls.append((s, t))
        return path_exists(graph, s, t)

    from repro.graph.generators import random_dag

    g = random_dag(15, 30, seed=11)  # DAG: plenty of distinct-class pairs
    rc = compress_reachability(g)
    for u in list(g.nodes())[:6]:
        for v in list(g.nodes())[:6]:
            assert rc.query(u, v, evaluator=homemade_bfs) == path_exists(g, u, v)
    assert calls  # the evaluator really ran on Gr


def test_bfs_variant_produces_identical_compression():
    rng = random.Random(3)
    for trial in range(8):
        n = rng.randrange(4, 20)
        g = gnm_random_graph(n, rng.randrange(0, min(70, n * (n - 1))), seed=trial + 13)
        assert canon(compress_reachability(g)) == canon(compress_reachability_bfs(g))


def test_stats_and_scc_ratio():
    g = gnm_random_graph(30, 120, seed=9)
    rc = compress_reachability(g)
    stats = rc.stats()
    assert stats.original_nodes == 30 and stats.original_edges == 120
    assert 0 < stats.ratio <= 1.0
    assert rc.scc_ratio() is not None and rc.scc_ratio() <= 1.0


def test_empty_and_singleton_graphs():
    g = DiGraph()
    g.add_node("only")
    rc = compress_reachability(g)
    assert rc.compressed.order() == 1
    assert rc.query("only", "only") is True
    loop = DiGraph.from_edges([("x", "x")])
    rcl = compress_reachability(loop)
    assert rcl.query("x", "x") is True
