"""Tests for maximum bisimulation (Section 4.1) and its algorithms."""

import random

from repro.core.bisimulation import (
    are_bisimilar,
    bisimulation_partition,
    bisimulation_partition_naive,
    is_bisimulation,
    is_stable,
    partition_relation,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_graph


def test_stratified_matches_naive_randomized():
    rng = random.Random(0)
    for trial in range(20):
        n = rng.randrange(3, 30)
        m = rng.randrange(0, min(120, n * (n - 1)))
        g = gnm_random_graph(n, m, num_labels=rng.choice([1, 2, 4]), seed=trial)
        assert (
            bisimulation_partition(g).as_frozen()
            == bisimulation_partition_naive(g).as_frozen()
        )


def test_result_is_a_bisimulation_and_stable():
    rng = random.Random(1)
    for trial in range(10):
        g = gnm_random_graph(15, rng.randrange(5, 60), num_labels=3, seed=trial + 5)
        part = bisimulation_partition(g)
        assert is_stable(g, part)
        assert is_bisimulation(g, partition_relation(part))


def test_labels_split_blocks():
    g = DiGraph.from_edges([(1, 3), (2, 3)])
    g.set_label(1, "A")
    g.set_label(2, "B")
    part = bisimulation_partition(g)
    assert not part.same_block(1, 2)


def test_sinks_with_same_label_merge():
    g = DiGraph.from_edges([(1, 2), (1, 3)])
    part = bisimulation_partition(g)
    assert part.same_block(2, 3)


def test_cycle_vs_sink_not_bisimilar():
    # Example 4's FA2/FA3 distinction: a node on a cycle is not bisimilar
    # to a node whose children are sinks.
    g = DiGraph.from_edges([(1, 2), (2, 1), (3, 4)])
    part = bisimulation_partition(g)
    assert not part.same_block(1, 3)


def test_self_loop_bisimilar_to_two_cycle():
    # Unfoldings are identical: an infinite path of the same label.
    g = DiGraph.from_edges([("a", "a"), ("b", "c"), ("c", "b")])
    part = bisimulation_partition(g)
    assert part.same_block("a", "b") and part.same_block("b", "c")


def test_paper_fig6_g1_classes(fig6_g1):
    g = fig6_g1
    part = bisimulation_partition(g)
    # B1 and B5 (both C and D children) are bisimilar; others are not.
    assert part.same_block("B1", "B5")
    for other in ("B2", "B3", "B4"):
        assert not part.same_block("B1", other)
    # A1, A2, A3 pairwise non-bisimilar (the Fig. 6 statement).
    assert not part.same_block("A1", "A2")
    assert not part.same_block("A1", "A3")
    assert not part.same_block("A2", "A3")


def test_recommendation_network_classes(recommendation_network):
    g = recommendation_network
    part = bisimulation_partition(g)
    # Example 1/4: the intended equivalences.
    assert part.same_block("BSA1", "BSA2")
    assert part.same_block("MSA1", "MSA2")
    assert part.same_block("FA1", "FA2")
    assert part.same_block("C1", "C2")
    assert part.same_block("C3", "C4") and part.same_block("C4", "C5")
    assert part.same_block("FA3", "FA4")
    # Example 4: FA2 and FA3 are not bisimilar.
    assert not part.same_block("FA2", "FA3")
    assert not part.same_block("C1", "C3")


def test_are_bisimilar_helper():
    g = DiGraph.from_edges([(1, 2), (3, 4)])
    assert are_bisimilar(g, 1, 3)
    g.set_label(4, "Z")
    assert not are_bisimilar(g, 1, 3)


def test_is_bisimulation_rejects_bad_relations():
    g = DiGraph.from_edges([(1, 2)])
    assert not is_bisimulation(g, [(1, 2)])  # 2 has no child matching 1's
    assert is_bisimulation(g, [(1, 1), (2, 2)])
    g2 = DiGraph.from_edges([(1, 2), (3, 4)])
    g2.set_label(1, "X")
    assert not is_bisimulation(g2, [(1, 3)])  # label mismatch
