"""Fig 12(k) — PCr under densification (benchmark: compressB on snapshot)."""
from conftest import report
from repro.core.pattern import compress_pattern
from repro.datasets.evolution import densification_sequence


def test_fig12k_pcr_synthetic(benchmark, experiment_runner):
    snapshots = list(
        densification_sequence(250, alpha=1.08, beta=1.2, steps=3, num_labels=10, seed=2)
    )
    g = snapshots[-1]
    benchmark(compress_pattern, g)
    report(experiment_runner("fig12k"))
