"""Fig 12(f) — incRCM vs compressR, deletions (benchmark: incRCM batch)."""
from conftest import report
from repro.core.incremental_reach import IncrementalReachabilityCompressor
from repro.datasets.catalog import load
from repro.datasets.updates import deletion_batch


def test_fig12f_incrcm_delete(benchmark, experiment_runner):
    g = load("socEpinions", seed=1, scale=0.3)

    def setup():
        inc = IncrementalReachabilityCompressor(g)
        batch = deletion_batch(g, 40, seed=7)
        return (inc, batch), {}

    def run(inc, batch):
        inc.apply(batch)
        inc.compression()

    benchmark.pedantic(run, setup=setup, rounds=5)
    report(experiment_runner("fig12f"))
