"""Table 2 — pattern compression ratios (benchmark: compressB)."""
from conftest import report
from repro.core.pattern import compress_pattern
from repro.datasets.catalog import load


def test_table2_compression_ratios(benchmark, experiment_runner):
    g = load("california", seed=1, scale=0.5)
    benchmark(compress_pattern, g)
    report(experiment_runner("table2"))
