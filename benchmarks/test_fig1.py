"""Figure 1 — P2P headline numbers (benchmark: both compressions)."""
from conftest import report
from repro.core.pattern import compress_pattern
from repro.core.reachability import compress_reachability
from repro.datasets.catalog import load


def test_fig1_p2p_summary(benchmark, experiment_runner):
    g = load("p2p", seed=1, scale=0.8)

    def both():
        compress_reachability(g)
        compress_pattern(g)

    benchmark(both)
    report(experiment_runner("fig1"))
