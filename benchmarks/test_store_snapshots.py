"""Store microbenchmark — snapshot load vs cold build (repo-internal)."""
import json
import warnings

from repro.bench.experiments.store import JSON_PATH
from repro.graph.csr import CSRGraph
from repro.graph.generators import preferential_attachment_graph
from repro.store.format import dump_bytes, load_bytes


def test_store_snapshot_load_speedup(benchmark, experiment_runner):
    g = preferential_attachment_graph(1200, out_degree=4, reciprocity=0.5, seed=3)
    data = dump_bytes(CSRGraph.from_digraph(g))

    benchmark(lambda: load_bytes(data))
    result = experiment_runner("store")
    print()
    print(result.to_text())
    # The experiment marks each check as a semantic gate or an
    # informational wall-clock/size measurement (the `gate` field in
    # BENCH_store.json, also consumed by the CI smoke job).  Only gates
    # are hard assertions here, so a noisy shared runner cannot fail
    # unrelated pushes; speedup targets are recorded per run instead.
    with open(JSON_PATH) as fh:
        checks = json.load(fh)["checks"]
    assert any(c["gate"] for c in checks), "semantic gates missing from payload"
    for c in checks:
        if c["gate"]:
            assert c["passed"], c["description"]
        elif not c["passed"]:
            warnings.warn(f"store check below target: {c['description']}")
