"""Fig 12(h) — incremental querying (benchmark: IncBMatch batch)."""
from conftest import report
from repro.datasets.catalog import load
from repro.datasets.patterns import random_pattern
from repro.datasets.updates import mixed_batch
from repro.queries.incremental_match import IncrementalMatcher


def test_fig12h_inc_querying(benchmark, experiment_runner):
    g = load("citation", seed=1, scale=0.3)
    q = random_pattern(g, 4, 4, max_bound=2, seed=8)

    def setup():
        matcher = IncrementalMatcher(q, g)
        batch = mixed_batch(g, 30, insert_ratio=0.7, seed=6)
        return (matcher, batch), {}

    benchmark.pedantic(lambda m, b: m.apply(b), setup=setup, rounds=5)
    report(experiment_runner("fig12h"))
