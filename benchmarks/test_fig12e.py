"""Fig 12(e) — incRCM vs compressR, insertions (benchmark: incRCM batch)."""
from conftest import report
from repro.core.incremental_reach import IncrementalReachabilityCompressor
from repro.datasets.catalog import load
from repro.datasets.updates import insertion_batch


def test_fig12e_incrcm_insert(benchmark, experiment_runner):
    g = load("socEpinions", seed=1, scale=0.3)

    def setup():
        inc = IncrementalReachabilityCompressor(g)
        batch = insertion_batch(g, 40, seed=7)
        return (inc, batch), {}

    def run(inc, batch):
        inc.apply(batch)
        inc.compression()

    benchmark.pedantic(run, setup=setup, rounds=5)
    report(experiment_runner("fig12e"))
