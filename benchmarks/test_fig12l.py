"""Fig 12(l) — PCr vs real-life growth (benchmark: compressB after growth)."""
from conftest import report
from repro.core.pattern import compress_pattern
from repro.datasets.catalog import load
from repro.datasets.updates import insertion_batch


def test_fig12l_pcr_reallife(benchmark, experiment_runner):
    g = load("california", seed=1, scale=0.5)
    for _, u, v in insertion_batch(g, int(g.size() * 0.05), seed=4):
        g.add_edge(u, v)
    benchmark(compress_pattern, g)
    report(experiment_runner("fig12l"))
