"""Kernels microbenchmark — CSR fast path vs dict backend (repo-internal)."""
import warnings

from repro.core.bisimulation import bisimulation_partition
from repro.graph.csr import CSRGraph
from repro.graph.generators import preferential_attachment_graph
from repro.graph.kernels import condensation_bitsets, csr_condensation


def test_kernels_scc_signature_speedup(benchmark, experiment_runner):
    g = preferential_attachment_graph(1200, out_degree=4, reciprocity=0.5, seed=3)
    csr = CSRGraph.from_digraph(g)

    benchmark(lambda: condensation_bitsets(csr_condensation(csr)))
    result = experiment_runner("kernels")
    print()
    print(result.to_text())
    # Only the semantic check is a hard gate here: wall-clock speedup
    # thresholds are enforced by the dedicated CI smoke job, not by the
    # tier-1 suite, so a noisy shared runner cannot fail unrelated pushes.
    for desc, ok in result.checks:
        if "byte-identical" in desc:
            assert ok, desc
        elif not ok:
            warnings.warn(f"kernels speedup check below target: {desc}")


def test_kernels_bisimulation_csr(benchmark):
    g = preferential_attachment_graph(800, out_degree=3, reciprocity=0.4, seed=9)
    ref = bisimulation_partition(g, backend="dict")

    result = benchmark(lambda: bisimulation_partition(g, backend="csr"))
    assert result.as_frozen() == ref.as_frozen()
