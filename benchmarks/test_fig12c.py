"""Fig 12(c) — Match time, synthetic graphs (benchmark: Match on G)."""
from conftest import report
from repro.datasets.patterns import random_pattern
from repro.graph.generators import gnm_random_graph
from repro.queries.matching import MatchContext, match


def test_fig12c_pattern_synthetic(benchmark, experiment_runner):
    g = gnm_random_graph(600, 3600, num_labels=10, seed=9)
    q = random_pattern(g, 5, 5, max_bound=3, seed=2)
    ctx = MatchContext(g)

    benchmark(lambda: match(q, g, ctx))
    report(experiment_runner("fig12c"))
