"""Fig 12(j) — RCr vs real-life growth (benchmark: compressR after growth)."""
from conftest import report
from repro.core.reachability import compress_reachability
from repro.datasets.catalog import load
from repro.datasets.updates import insertion_batch


def test_fig12j_rcr_reallife(benchmark, experiment_runner):
    g = load("p2p", seed=1, scale=0.5)
    for _, u, v in insertion_batch(g, int(g.size() * 0.05), seed=3):
        g.add_edge(u, v)
    benchmark(compress_reachability, g)
    report(experiment_runner("fig12j"))
