"""Table 1 — reachability compression ratios (benchmark: compressR)."""
from conftest import report
from repro.core.reachability import compress_reachability
from repro.datasets.catalog import load


def test_table1_compression_ratios(benchmark, experiment_runner):
    g = load("socEpinions", seed=1, scale=0.4)
    benchmark(compress_reachability, g)
    report(experiment_runner("table1"))
