"""Fig 12(a) — reachability query time on G vs Gr (benchmark: BFS on Gr)."""
import random

from conftest import report
from repro.core.reachability import compress_reachability
from repro.datasets.catalog import load


def test_fig12a_reach_query_time(benchmark, experiment_runner):
    g = load("socEpinions", seed=1, scale=0.4)
    rc = compress_reachability(g)
    rng = random.Random(3)
    nodes = g.node_list()
    pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(50)]

    benchmark(lambda: [rc.query(u, v) for u, v in pairs])
    report(experiment_runner("fig12a"))
