"""Fig 12(i) — RCr under densification (benchmark: compressR on snapshot)."""
from conftest import report
from repro.core.reachability import compress_reachability
from repro.datasets.evolution import densification_sequence


def test_fig12i_rcr_synthetic(benchmark, experiment_runner):
    snapshots = list(densification_sequence(250, alpha=1.08, beta=1.2, steps=3, seed=2))
    g = snapshots[-1]
    benchmark(compress_reachability, g)
    report(experiment_runner("fig12i"))
