"""Shared fixtures for the benchmark suite.

Each ``benchmarks/test_*.py`` regenerates one table/figure of the paper:
it runs the corresponding experiment (quick configuration), prints the
paper-vs-measured table, asserts the paper's shape claims, and times the
experiment's core operation with pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentResult, run_experiment

_CACHE = {}


@pytest.fixture(scope="session")
def experiment_runner():
    """Session-cached experiment runner: ``runner("table1") -> result``."""

    def runner(experiment_id: str) -> ExperimentResult:
        if experiment_id not in _CACHE:
            _CACHE[experiment_id] = run_experiment(experiment_id, quick=True)
        return _CACHE[experiment_id]

    return runner


def report(result: ExperimentResult) -> None:
    """Print the rendered table and assert every shape check."""
    print()
    print(result.to_text())
    assert result.passed(), f"shape checks failed: {result.failed_checks()}"
