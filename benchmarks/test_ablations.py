"""Ablations — optimized vs paper-literal algorithm variants."""
from conftest import report
from repro.core.reachability import compress_reachability_bfs
from repro.datasets.catalog import load


def test_ablations(benchmark, experiment_runner):
    g = load("p2p", seed=1, scale=0.25)
    benchmark(compress_reachability_bfs, g)
    report(experiment_runner("ablations"))
