"""Fig 12(d) — memory cost (benchmark: 2-hop construction on Gr)."""
from conftest import report
from repro.core.reachability import compress_reachability
from repro.datasets.catalog import load
from repro.index.twohop import TwoHopIndex


def test_fig12d_memory_cost(benchmark, experiment_runner):
    g = load("wikiVote", seed=1, scale=0.5)
    gr = compress_reachability(g).compressed
    benchmark(TwoHopIndex, gr)
    report(experiment_runner("fig12d"))
