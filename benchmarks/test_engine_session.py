"""Engine sessions — routed vs direct workloads (benchmark: routed batch)."""
import warnings

from repro.datasets.catalog import load
from repro.datasets.patterns import random_pattern
from repro.engine import GraphEngine
from repro.queries.reachability import ReachabilityQuery


def test_engine_routed_batch(benchmark, experiment_runner):
    import random

    g = load("socEpinions", seed=3, scale=0.4)
    engine = GraphEngine(g)
    rng = random.Random(5)
    nodes = g.node_list()
    workload = [
        ReachabilityQuery(rng.choice(nodes), rng.choice(nodes)) for _ in range(50)
    ] + [random_pattern(g, 3, 3, max_bound=2, seed=s) for s in range(3)]
    engine.query_batch(workload)  # materialise representations up front

    benchmark(lambda: engine.query_batch(workload))
    result = experiment_runner("engine")
    print()
    print(result.to_text())
    # Semantic identity checks gate; wall-clock session comparisons are
    # informational here (the engine-smoke CI job owns the JSON gates).
    for desc, ok in result.checks:
        if "identical" in desc:
            assert ok, desc
        elif not ok:
            warnings.warn(f"engine session speed check below target: {desc}")
