"""Fig 12(g) — incPCM vs compressB vs IncBsim (benchmark: incPCM batch)."""
from conftest import report
from repro.core.incremental_pattern import IncrementalPatternCompressor
from repro.datasets.catalog import load
from repro.datasets.updates import mixed_batch


def test_fig12g_incpcm_mixed(benchmark, experiment_runner):
    g = load("youtube", seed=1, scale=0.3)

    def setup():
        inc = IncrementalPatternCompressor(g)
        batch = mixed_batch(g, 30, insert_ratio=0.6, seed=5)
        return (inc, batch), {}

    def run(inc, batch):
        inc.apply(batch)
        inc.compression()

    benchmark.pedantic(run, setup=setup, rounds=5)
    report(experiment_runner("fig12g"))
