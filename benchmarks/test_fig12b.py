"""Fig 12(b) — Match time, real-life graphs (benchmark: Match on Gr)."""
from conftest import report
from repro.core.pattern import compress_pattern
from repro.datasets.catalog import load
from repro.datasets.patterns import random_pattern
from repro.queries.matching import MatchContext, match


def test_fig12b_pattern_query_time(benchmark, experiment_runner):
    g = load("youtube", seed=1, scale=0.4)
    pc = compress_pattern(g)
    gr = pc.compressed
    q = random_pattern(g, 5, 5, max_bound=3, seed=2)
    ctx = MatchContext(gr)

    benchmark(lambda: pc.post_process(match(q, gr, ctx)))
    report(experiment_runner("fig12b"))
